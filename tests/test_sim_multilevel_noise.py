import numpy as np
import pytest

from repro.pulses.shapes import gaussian
from repro.qmath.unitaries import rx
from repro.sim.multilevel import (
    anharmonic_diagonal,
    leakage_infidelity,
    leakage_population,
    lowering_operator,
    transmon_drive_hamiltonians,
    transmon_z,
)
from repro.sim.noise import DriveNoise
from repro.units import MHZ


class TestOperators:
    def test_lowering_matrix_elements(self):
        a = lowering_operator(4)
        assert np.isclose(a[0, 1], 1.0)
        assert np.isclose(a[1, 2], np.sqrt(2.0))
        assert np.isclose(a[2, 3], np.sqrt(3.0))

    def test_number_operator(self):
        a = lowering_operator(5)
        n = a.conj().T @ a
        assert np.allclose(np.diag(n).real, [0, 1, 2, 3, 4])

    def test_anharmonic_diagonal(self):
        diag = anharmonic_diagonal(4, -2.0)
        assert np.allclose(diag, [0.0, 0.0, -2.0, -6.0])

    def test_transmon_z_reduces_to_sigma_z(self):
        z = transmon_z(2)
        assert np.allclose(z, np.diag([1.0, -1.0]))

    def test_drive_reduces_to_two_level(self):
        # On 2 levels the transmon drive is exactly Omega_x X + Omega_y Y.
        from repro.qmath.paulis import SX, SY

        hams = transmon_drive_hamiltonians(
            np.array([0.3]), np.array([0.1]), 2, alpha=-1.0
        )
        assert np.allclose(hams[0], 0.3 * SX + 0.1 * SY)


class TestLeakage:
    def test_two_level_limit_no_leakage(self):
        wf = gaussian(20.0, 0.25, np.pi / 4.0)
        pop = leakage_population(wf.samples, np.zeros_like(wf.samples), 0.25, num_levels=2)
        assert pop < 1e-12

    def test_gaussian_leaks_on_five_levels(self):
        wf = gaussian(20.0, 0.25, np.pi / 4.0)
        pop = leakage_population(
            wf.samples, np.zeros_like(wf.samples), 0.25,
            num_levels=5, alpha=-300.0 * MHZ,
        )
        assert pop > 1e-7  # leakage is small but nonzero

    def test_smaller_anharmonicity_leaks_more(self):
        wf = gaussian(20.0, 0.25, np.pi / 4.0)
        zeros = np.zeros_like(wf.samples)
        pop_small = leakage_population(wf.samples, zeros, 0.25, alpha=-200.0 * MHZ)
        pop_large = leakage_population(wf.samples, zeros, 0.25, alpha=-400.0 * MHZ)
        assert pop_small > pop_large

    def test_infidelity_without_crosstalk(self):
        wf = gaussian(20.0, 0.25, np.pi / 4.0)
        infid = leakage_infidelity(
            wf.samples, np.zeros_like(wf.samples), 0.25, rx(np.pi / 2.0),
            alpha=-300.0 * MHZ,
        )
        assert 0.0 <= infid < 0.05

    def test_crosstalk_increases_infidelity(self):
        wf = gaussian(20.0, 0.25, np.pi / 4.0)
        zeros = np.zeros_like(wf.samples)
        base = leakage_infidelity(
            wf.samples, zeros, 0.25, rx(np.pi / 2.0), alpha=-300.0 * MHZ
        )
        noisy = leakage_infidelity(
            wf.samples, zeros, 0.25, rx(np.pi / 2.0), alpha=-300.0 * MHZ,
            zz_strength=2.0 * MHZ,
        )
        assert noisy > base


class TestDriveNoise:
    def test_defaults_are_noiseless(self):
        noise = DriveNoise()
        assert noise.detuning_rad_ns == 0.0
        assert np.allclose(noise.scale_amplitudes(np.ones(3)), np.ones(3))

    def test_detuning_conversion(self):
        noise = DriveNoise(detuning_mhz=1.0)
        assert np.isclose(noise.detuning_rad_ns, 0.5 * MHZ)

    def test_amplitude_scaling(self):
        noise = DriveNoise(amplitude_fraction=0.001)
        assert np.allclose(noise.scale_amplitudes(np.ones(2)), [1.001, 1.001])
