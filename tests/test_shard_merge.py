"""Shard determinism and store-merge tests (multi-machine campaigns).

The contract under test: running ``--shard 0/2`` and ``--shard 1/2``
into separate stores and merging them yields records *byte-identical*
to the unsharded run — failure records included — and a merge refuses
stores that could not have come from one campaign (mixed fingerprints,
newer formats, conflicting results) with the CLI's exit-2 convention.
"""

import json

import pytest

from repro.campaigns.spec import Shard, SweepSpec, cell_key, shard_of
from repro.campaigns.store import (
    STORE_FORMAT,
    ResultStore,
    StoreMergeError,
    merge_stores,
    semantic_record,
)
from repro.cli import main

FP = "shard-fp"

GRID = SweepSpec(
    name="shardgrid",
    benchmarks=("QAOA", "Ising", "GRC"),
    sizes=(4,),
    configs=("gau+par", "pert+zzx"),
)


class TestSharding:
    def test_shard_of_is_deterministic_and_in_range(self):
        cells = GRID.cells()
        for n in (1, 2, 3, 5):
            shards = [shard_of(cell, n) for cell in cells]
            assert shards == [shard_of(cell, n) for cell in cells]
            assert all(0 <= s < n for s in shards)

    def test_shards_partition_the_grid(self):
        cells = GRID.cells()
        slices = [Shard(i, 3).select(cells) for i in range(3)]
        flat = [cell for piece in slices for cell in piece]
        assert sorted(flat, key=str) == sorted(cells, key=str)
        for i, piece in enumerate(slices):
            for cell in piece:
                assert not any(
                    cell in other for j, other in enumerate(slices) if j != i
                )

    def test_shard_selection_is_fingerprint_independent(self):
        # The partition hashes cell payloads, not store keys: machines
        # running different library builds still agree on ownership.
        cells = GRID.cells()
        assert [shard_of(c, 2) for c in cells] == [
            shard_of(c, 2) for c in GRID.cells()
        ]
        keys_a = {cell_key(c, "fp-a") for c in cells}
        keys_b = {cell_key(c, "fp-b") for c in cells}
        assert keys_a != keys_b  # keys differ, shards don't

    def test_shard_parse_accepts_i_slash_n_only(self):
        assert Shard.parse("0/2") == Shard(0, 2)
        assert str(Shard.parse("1/2")) == "1/2"
        for bad in ("2/2", "3", "a/b", "-1/2", "1/0", "1/"):
            with pytest.raises(ValueError):
                Shard.parse(bad)


def _pinned_record(cell, i, status="ok"):
    """A fully deterministic record (no wall-clock fields vary)."""
    record = {
        "key": cell_key(cell, FP),
        "fingerprint": FP,
        "cell": cell.payload(),
        "result": None if status != "ok" else {"fidelity": 0.9 + i / 100.0},
        "elapsed_s": 0.25,
        "timestamp": "2026-01-01T00:00:00",
    }
    if status != "ok":
        record["status"] = status
        record["error"] = {"type": "RuntimeError", "quarantined": True}
    return record


def _write(path, records):
    store = ResultStore(path)
    for record in records:
        store.put_record(dict(record))
    return path


class TestMerge:
    def test_merged_shards_byte_identical_to_unsharded(self, tmp_path):
        cells = GRID.cells()
        # Cell 0 is a durable failure — failures must merge too.
        records = [
            _pinned_record(cell, i, status="error" if i == 0 else "ok")
            for i, cell in enumerate(cells)
        ]
        unsharded = _write(tmp_path / "full.jsonl", records)
        shard0 = _write(
            tmp_path / "s0.jsonl",
            [r for c, r in zip(cells, records) if Shard(0, 2).owns(c)],
        )
        shard1 = _write(
            tmp_path / "s1.jsonl",
            [r for c, r in zip(cells, records) if Shard(1, 2).owns(c)],
        )
        out = tmp_path / "merged.jsonl"
        report = merge_stores([shard0, shard1], out)
        assert report.records == len(cells) and report.duplicates == 0
        assert sorted(out.read_text().splitlines()) == sorted(
            unsharded.read_text().splitlines()
        )

    def test_merge_order_does_not_change_the_file(self, tmp_path):
        cells = GRID.cells()
        records = [_pinned_record(c, i) for i, c in enumerate(cells)]
        s0 = _write(tmp_path / "s0.jsonl",
                    [r for c, r in zip(cells, records) if Shard(0, 2).owns(c)])
        s1 = _write(tmp_path / "s1.jsonl",
                    [r for c, r in zip(cells, records) if Shard(1, 2).owns(c)])
        a, b = tmp_path / "ab.jsonl", tmp_path / "ba.jsonl"
        merge_stores([s0, s1], a)
        merge_stores([s1, s0], b)
        assert a.read_bytes() == b.read_bytes()

    def test_merge_is_resumable_into_existing_output(self, tmp_path):
        cells = GRID.cells()
        records = [_pinned_record(c, i) for i, c in enumerate(cells)]
        s0 = _write(tmp_path / "s0.jsonl", records[:2])
        s1 = _write(tmp_path / "s1.jsonl", records[2:])
        out = tmp_path / "m.jsonl"
        merge_stores([s0], out)
        report = merge_stores([s1], out)
        assert report.records == len(cells)
        assert len(ResultStore(out).records()) == len(cells)

    def test_success_beats_failure_for_the_same_key(self, tmp_path):
        cell = GRID.cells()[0]
        failed = _write(tmp_path / "a.jsonl", [_pinned_record(cell, 0, "error")])
        healed = _write(tmp_path / "b.jsonl", [_pinned_record(cell, 0)])
        out = tmp_path / "m.jsonl"
        report = merge_stores([failed, healed], out)
        assert report.duplicates == 1
        merged = ResultStore(out).records()
        assert len(merged) == 1 and "status" not in merged[0]

    def test_conflicting_results_refuse_to_merge(self, tmp_path):
        cell = GRID.cells()[0]
        a = _pinned_record(cell, 0)
        b = _pinned_record(cell, 0)
        b["result"] = {"fidelity": 0.1}  # same key, different answer
        pa = _write(tmp_path / "a.jsonl", [a])
        pb = _write(tmp_path / "b.jsonl", [b])
        with pytest.raises(StoreMergeError, match="conflicting"):
            merge_stores([pa, pb], tmp_path / "m.jsonl")

    def test_volatile_fields_never_conflict(self, tmp_path):
        cell = GRID.cells()[0]
        a = _pinned_record(cell, 0)
        b = dict(a, elapsed_s=9.9, timestamp="2026-02-02T00:00:00")
        pa = _write(tmp_path / "a.jsonl", [a])
        pb = _write(tmp_path / "b.jsonl", [b])
        report = merge_stores([pa, pb], tmp_path / "m.jsonl")
        assert report.records == 1 and report.duplicates == 1
        assert semantic_record(a) == semantic_record(b)

    def test_mismatched_fingerprints_refuse_to_merge(self, tmp_path):
        cell = GRID.cells()[0]
        a = _pinned_record(cell, 0)
        b = dict(_pinned_record(GRID.cells()[1], 1), fingerprint="other-fp")
        pa = _write(tmp_path / "a.jsonl", [a])
        pb = _write(tmp_path / "b.jsonl", [b])
        with pytest.raises(StoreMergeError, match="fingerprint mismatch"):
            merge_stores([pa, pb], tmp_path / "m.jsonl")

    def test_missing_input_refuses_to_merge(self, tmp_path):
        with pytest.raises(StoreMergeError, match="missing input"):
            merge_stores([tmp_path / "nope.jsonl"], tmp_path / "m.jsonl")


class TestMergeCLI:
    def _shard_stores(self, tmp_path):
        cells = GRID.cells()
        records = [_pinned_record(c, i) for i, c in enumerate(cells)]
        s0 = _write(tmp_path / "s0.jsonl",
                    [r for c, r in zip(cells, records) if Shard(0, 2).owns(c)])
        s1 = _write(tmp_path / "s1.jsonl",
                    [r for c, r in zip(cells, records) if Shard(1, 2).owns(c)])
        return s0, s1, len(cells)

    def test_merge_subcommand(self, tmp_path, capsys):
        s0, s1, total = self._shard_stores(tmp_path)
        out = tmp_path / "merged.jsonl"
        assert main(["merge", str(s0), str(s1), "--out", str(out)]) == 0
        assert f"{total} record(s)" in capsys.readouterr().out
        assert len(ResultStore(out).records()) == total

    def test_merge_exit_2_on_fingerprint_mismatch(self, tmp_path, capsys):
        s0, s1, _ = self._shard_stores(tmp_path)
        lines = s1.read_text().splitlines()
        doctored = [
            json.dumps(
                dict(json.loads(line), fingerprint="other-fp"), sort_keys=True
            )
            for line in lines
        ]
        s1.write_text("\n".join(doctored) + "\n")
        code = main(["merge", str(s0), str(s1), "--out", str(tmp_path / "m.jsonl")])
        assert code == 2
        assert "fingerprint mismatch" in capsys.readouterr().err

    def test_merge_exit_2_on_newer_store_format(self, tmp_path, capsys):
        s0, s1, _ = self._shard_stores(tmp_path)
        lines = s1.read_text().splitlines()
        record = dict(json.loads(lines[0]), format=STORE_FORMAT + 1)
        s1.write_text(json.dumps(record, sort_keys=True) + "\n")
        code = main(["merge", str(s0), str(s1), "--out", str(tmp_path / "m.jsonl")])
        assert code == 2
        assert "format" in capsys.readouterr().err

    def test_merge_exit_2_on_missing_input(self, tmp_path, capsys):
        code = main([
            "merge", str(tmp_path / "ghost.jsonl"),
            "--out", str(tmp_path / "m.jsonl"),
        ])
        assert code == 2
        assert "missing input" in capsys.readouterr().err


class TestShardedSweepEndToEnd:
    """Real evaluations: two CLI shard sweeps + merge == one unsharded sweep."""

    GRID_ARGS = [
        "--benchmarks", "QAOA,Ising", "--sizes", "4",
        "--configs", "gau+par,pert+zzx", "--name", "e2e",
    ]

    def test_sharded_cli_run_merges_to_the_unsharded_store(self, tmp_path, capsys):
        full = tmp_path / "full.jsonl"
        assert main(["sweep", *self.GRID_ARGS, "--store", str(full)]) == 0
        s0, s1 = tmp_path / "s0.jsonl", tmp_path / "s1.jsonl"
        assert main([
            "sweep", *self.GRID_ARGS, "--shard", "0/2", "--store", str(s0)
        ]) == 0
        assert main([
            "sweep", *self.GRID_ARGS, "--shard", "1/2", "--store", str(s1)
        ]) == 0
        out = tmp_path / "merged.jsonl"
        assert main(["merge", str(s0), str(s1), "--out", str(out)]) == 0
        capsys.readouterr()

        reference = {r["key"]: r for r in ResultStore(full).records()}
        merged = {r["key"]: r for r in ResultStore(out).records()}
        assert set(merged) == set(reference)
        for key, record in merged.items():
            # Identical modulo wall-clock fields: results, keys, cell
            # payloads, fingerprints all match the single-machine run.
            assert semantic_record(record) == semantic_record(reference[key])

        # The merged store renders the full table offline.
        assert main([
            "report", *self.GRID_ARGS, "--store", str(out)
        ]) == 0
        assert "QAOA-4" in capsys.readouterr().out

    def test_sweep_rejects_bad_shard_spec(self, capsys):
        assert main([
            "sweep", *self.GRID_ARGS, "--shard", "2/2", "--store", "x.jsonl"
        ]) == 2
        assert "invalid shard" in capsys.readouterr().err
