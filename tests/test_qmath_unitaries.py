import numpy as np
import pytest

from repro.qmath.paulis import ID2, SX, SY, SZ
from repro.qmath.unitaries import (
    CNOT,
    HADAMARD,
    expm_hermitian,
    rotation_1q,
    rx,
    ry,
    rz,
    rzx,
    su2_from_bloch,
)


class TestRotations:
    def test_rx_pi_is_x(self):
        assert np.allclose(rx(np.pi), -1j * SX)

    def test_ry_pi_is_y(self):
        assert np.allclose(ry(np.pi), -1j * SY)

    def test_rz_pi_is_z(self):
        assert np.allclose(rz(np.pi), -1j * SZ)

    def test_rx_composition(self):
        assert np.allclose(rx(0.3) @ rx(0.4), rx(0.7))

    def test_rz_diagonal(self):
        m = rz(0.9)
        assert abs(m[0, 1]) == 0.0 and abs(m[1, 0]) == 0.0

    def test_rotation_periodicity(self):
        assert np.allclose(rx(4.0 * np.pi), ID2)

    def test_rx_2pi_is_minus_identity(self):
        assert np.allclose(rx(2.0 * np.pi), -ID2)

    def test_hadamard_squares_to_identity(self):
        assert np.allclose(HADAMARD @ HADAMARD, ID2)

    def test_hadamard_conjugates_x_to_z(self):
        assert np.allclose(HADAMARD @ SX @ HADAMARD, SZ)


class TestRzx:
    def test_unitary(self):
        m = rzx(0.7)
        assert np.allclose(m @ m.conj().T, np.eye(4))

    def test_generator(self):
        zx = np.kron(SZ, SX)
        assert np.allclose(rzx(0.5), expm_hermitian(zx, 0.25))

    def test_block_structure(self):
        # control |0> block rotates +theta, |1> block -theta
        m = rzx(np.pi / 2.0)
        assert np.allclose(m[:2, :2], rx(np.pi / 2.0))
        assert np.allclose(m[2:, 2:], rx(-np.pi / 2.0))

    def test_cnot_equivalence(self):
        # CNOT = phase * Rz_c(-pi/2) Rx_t(-pi/2) Rzx(pi/2)
        fix = np.kron(rz(-np.pi / 2.0), rx(-np.pi / 2.0))
        u = fix @ rzx(np.pi / 2.0)
        phase = u[0, 0] / abs(u[0, 0])
        assert np.allclose(u / phase, CNOT)


class TestRotation1q:
    def test_zero_drive_is_identity(self):
        assert np.allclose(rotation_1q(0.0, 0.0, 1.0), ID2)

    def test_x_only_matches_rx(self):
        # H = w X held for t rotates by 2 w t.
        assert np.allclose(rotation_1q(0.25, 0.0, 1.0), rx(0.5))

    def test_y_only_matches_ry(self):
        assert np.allclose(rotation_1q(0.0, 0.25, 1.0), ry(0.5))

    def test_unitarity(self, rng):
        for _ in range(10):
            wx, wy, dt = rng.uniform(-2, 2, 3)
            u = rotation_1q(wx, wy, abs(dt))
            assert np.allclose(u @ u.conj().T, ID2)


class TestExpmHermitian:
    def test_matches_scipy(self, rng):
        from scipy.linalg import expm

        h = rng.normal(size=(6, 6)) + 1j * rng.normal(size=(6, 6))
        h = h + h.conj().T
        assert np.allclose(expm_hermitian(h, 0.37), expm(-1j * 0.37 * h))

    def test_unitary_output(self, rng):
        h = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        h = h + h.conj().T
        u = expm_hermitian(h, 2.0)
        assert np.allclose(u @ u.conj().T, np.eye(4), atol=1e-12)

    def test_identity_at_zero_time(self, rng):
        h = np.diag([1.0, 2.0, 3.0]).astype(complex)
        assert np.allclose(expm_hermitian(h, 0.0), np.eye(3))


class TestSu2FromBloch:
    def test_x_axis(self):
        assert np.allclose(su2_from_bloch(0.8, (1, 0, 0)), rx(0.8))

    def test_z_axis(self):
        assert np.allclose(su2_from_bloch(0.8, (0, 0, 1)), rz(0.8))

    def test_axis_normalization(self):
        assert np.allclose(
            su2_from_bloch(0.5, (2, 0, 0)), su2_from_bloch(0.5, (1, 0, 0))
        )

    def test_zero_axis_raises(self):
        with pytest.raises(ValueError):
            su2_from_bloch(1.0, (0, 0, 0))
