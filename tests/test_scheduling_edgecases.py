"""ZZXSched edge cases: degenerate circuits and unsatisfiable requirements."""

import pytest

from repro.circuits import Circuit, transpile
from repro.scheduling import SuppressionRequirement, ZZXConfig, zzx_schedule
from repro.scheduling.zzxsched import IDENTITY_POLICIES
from repro.verify.reference import reference_zzx_schedule


class TestEmptyAndVirtualOnly:
    def test_empty_circuit(self, grid23):
        schedule = zzx_schedule(Circuit(6), grid23)
        assert schedule.num_layers == 0
        assert schedule.trailing_virtual == []
        assert schedule.all_gates() == []

    def test_virtual_only_circuit(self, grid23):
        circuit = Circuit(6).rz(0, 0.3).rz(1, -0.2).rz(0, 0.1)
        schedule = zzx_schedule(circuit, grid23)
        assert schedule.num_layers == 0
        assert [g.name for g in schedule.trailing_virtual] == ["rz"] * 3
        assert schedule.all_gates() == circuit.gates

    def test_empty_circuit_matches_reference(self, grid23):
        reference, trace = reference_zzx_schedule(Circuit(6), grid23)
        assert reference.num_layers == 0
        assert trace.splits == []


class TestSingleQubitOnly:
    @pytest.mark.parametrize("policy", IDENTITY_POLICIES)
    def test_all_gates_scheduled_under_both_policies(self, grid23, policy):
        circuit = transpile(Circuit(6).h(0).x(3).y(5))
        config = ZZXConfig(identity_policy=policy)
        schedule = zzx_schedule(circuit, grid23, config=config)
        physical = [g for g in circuit.gates if not g.is_virtual]
        scheduled = [g for g in schedule.all_gates() if not g.is_virtual]
        assert len(scheduled) == len(physical)
        for layer in schedule.layers:
            layer.validate()
            # On the bipartite grid Algorithm 1 finds a complete cut, so
            # pulsed qubits always stay inside one partition of the plan.
            colors = {layer.plan.coloring[q] for q in layer.pulsed_qubits}
            assert len(colors) == 1

    @pytest.mark.parametrize("policy", IDENTITY_POLICIES)
    def test_matches_reference_under_both_policies(self, grid23, policy):
        circuit = transpile(Circuit(6).h(0).h(1).h(2).x(4).y(5))
        config = ZZXConfig(identity_policy=policy)
        production = zzx_schedule(circuit, grid23, config=config)
        reference, _ = reference_zzx_schedule(circuit, grid23, config=config)
        assert production.num_layers == reference.num_layers
        for ours, ref in zip(production.layers, reference.layers):
            assert ours.gates == ref.gates
            assert ours.identities == ref.identities
            assert ours.virtual == ref.virtual

    def test_all_free_policy_pulses_at_least_as_many(self, grid23):
        circuit = transpile(Circuit(6).h(0).x(1))
        literal = zzx_schedule(
            circuit, grid23, config=ZZXConfig(identity_policy="not_pending")
        )
        eager = zzx_schedule(
            circuit, grid23, config=ZZXConfig(identity_policy="all_free")
        )
        count = lambda s: sum(len(l.identities) for l in s.layers)  # noqa: E731
        assert count(eager) >= count(literal)


class TestUnsatisfiableRequirement:
    """A requirement nothing satisfies must degrade, not loop."""

    #: NQ < 1 and NC <= -1 cannot hold for any cut (NQ, NC >= 0).
    IMPOSSIBLE = SuppressionRequirement(
        max_nq_exclusive=1, max_nc_inclusive=-1.0
    )

    def _three_gate_circuit(self) -> Circuit:
        # Three disjoint couplings of the 2x3 grid: (0,1), (3,4), (2,5).
        return (
            Circuit(6).rzx90(0, 1).rzx90(3, 4).rzx90(2, 5)
        )

    def test_terminates_with_one_gate_per_layer(self, grid23):
        schedule = zzx_schedule(
            self._three_gate_circuit(), grid23, requirement=self.IMPOSSIBLE
        )
        # Every split ends at the single-gate fallback: 3 layers, one
        # two-qubit gate each.
        assert schedule.num_layers == 3
        for layer in schedule.layers:
            assert len([g for g in layer.gates if g.num_qubits == 2]) == 1

    def test_matches_reference(self, grid23):
        circuit = self._three_gate_circuit()
        production = zzx_schedule(circuit, grid23, requirement=self.IMPOSSIBLE)
        reference, trace = reference_zzx_schedule(
            circuit, grid23, requirement=self.IMPOSSIBLE
        )
        assert production.num_layers == reference.num_layers
        for ours, ref in zip(production.layers, reference.layers):
            assert ours.gates == ref.gates
            assert ours.identities == ref.identities
        # Splitting happened, and each split's closest pair ended up in
        # different layers (Theorem 6.1 on the decisions actually taken).
        assert trace.splits
        for split in trace.splits:
            a, b = split.closest
            assert trace.layer_of[a] != trace.layer_of[b]

    def test_gates_all_scheduled_exactly_once(self, grid23):
        circuit = self._three_gate_circuit()
        schedule = zzx_schedule(circuit, grid23, requirement=self.IMPOSSIBLE)
        assert sorted(
            (g.name, g.qubits) for g in schedule.all_gates()
        ) == sorted((g.name, g.qubits) for g in circuit.gates)
