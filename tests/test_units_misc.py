import numpy as np

from repro.units import (
    GHZ,
    KHZ,
    MHZ,
    US,
    khz_to_rad_ns,
    mhz_to_rad_ns,
    rad_ns_to_khz,
    rad_ns_to_mhz,
)


class TestUnits:
    def test_mhz_roundtrip(self):
        assert np.isclose(rad_ns_to_mhz(mhz_to_rad_ns(1.7)), 1.7)

    def test_khz_roundtrip(self):
        assert np.isclose(rad_ns_to_khz(khz_to_rad_ns(200.0)), 200.0)

    def test_mhz_value(self):
        # 1 MHz -> 2 pi * 1e-3 rad/ns
        assert np.isclose(MHZ, 2.0 * np.pi * 1e-3)

    def test_khz_is_milli_mhz(self):
        assert np.isclose(KHZ * 1000.0, MHZ)

    def test_ghz_is_kilo_mhz(self):
        assert np.isclose(GHZ, MHZ * 1000.0)

    def test_us_in_ns(self):
        assert US == 1e3

    def test_period_consistency(self):
        # A strength of lambda/2pi = 1 MHz means a 2 pi phase in 1000 ns.
        lam = mhz_to_rad_ns(1.0)
        assert np.isclose(lam * 1000.0, 2.0 * np.pi)


class TestVersion:
    def test_version_exposed(self):
        import repro

        assert repro.__version__ == "1.1.0"

    def test_public_api_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
