import numpy as np
import pytest

from repro.analysis import (
    effective_zz_khz,
    fit_oscillation_frequency,
    render_table,
)


class TestFrequencyFitting:
    def test_exact_cosine(self):
        t = np.arange(0, 5000, 40.0)
        f_true = 1.1e-3  # cycles per ns
        p = 0.5 * (1 + np.cos(2 * np.pi * f_true * t + 0.3))
        assert np.isclose(fit_oscillation_frequency(t, p), f_true, rtol=1e-6)

    def test_with_noise(self, rng):
        t = np.arange(0, 8000, 40.0)
        f_true = 0.9e-3
        p = 0.5 * (1 + np.cos(2 * np.pi * f_true * t)) + 0.01 * rng.normal(
            size=len(t)
        )
        assert np.isclose(fit_oscillation_frequency(t, p), f_true, rtol=1e-3)

    def test_two_close_frequencies_distinguished(self):
        t = np.arange(0, 10000, 40.0)
        f0, f1 = 1.0e-3, 1.2e-3  # differ by 200 kHz
        p0 = 0.5 * (1 + np.cos(2 * np.pi * f0 * t))
        p1 = 0.5 * (1 + np.cos(2 * np.pi * f1 * t))
        zz = effective_zz_khz(t, p0, p1)
        assert np.isclose(zz, 200.0, rtol=1e-3)

    def test_identical_fringes_give_zero(self):
        t = np.arange(0, 5000, 40.0)
        p = 0.5 * (1 + np.cos(2 * np.pi * 1e-3 * t))
        assert effective_zz_khz(t, p, p) < 1e-6

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_oscillation_frequency(np.arange(4), np.ones(4))


class TestRenderTable:
    def test_empty(self):
        assert render_table([]) == "(no rows)"

    def test_columns_aligned(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = render_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_float_formatting(self):
        text = render_table([{"v": 0.123456789}], floatfmt=".2f")
        assert "0.12" in text

    def test_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]
