import numpy as np
import pytest

from repro.qmath.paulis import ID2, SX, SY, SZ, pauli_string, sigma_minus, sigma_plus


class TestPaulis:
    def test_pauli_squares_are_identity(self):
        for p in (SX, SY, SZ):
            assert np.allclose(p @ p, ID2)

    def test_commutation_xy(self):
        assert np.allclose(SX @ SY - SY @ SX, 2j * SZ)

    def test_commutation_yz(self):
        assert np.allclose(SY @ SZ - SZ @ SY, 2j * SX)

    def test_commutation_zx(self):
        assert np.allclose(SZ @ SX - SX @ SZ, 2j * SY)

    def test_anticommutation(self):
        assert np.allclose(SX @ SY + SY @ SX, np.zeros((2, 2)))

    def test_traceless(self):
        for p in (SX, SY, SZ):
            assert abs(np.trace(p)) < 1e-14

    def test_hermitian(self):
        for p in (SX, SY, SZ):
            assert np.allclose(p, p.conj().T)


class TestLadder:
    def test_sigma_plus_raises(self):
        one = np.array([0.0, 1.0], dtype=complex)
        assert np.allclose(sigma_plus() @ one, [1.0, 0.0])

    def test_sigma_minus_lowers(self):
        zero = np.array([1.0, 0.0], dtype=complex)
        assert np.allclose(sigma_minus() @ zero, [0.0, 1.0])

    def test_x_is_sum_of_ladder(self):
        assert np.allclose(sigma_plus() + sigma_minus(), SX)


class TestPauliString:
    def test_single_letter(self):
        assert np.allclose(pauli_string("Z"), SZ)

    def test_two_letters(self):
        assert np.allclose(pauli_string("ZX"), np.kron(SZ, SX))

    def test_identity_padding(self):
        assert np.allclose(pauli_string("IZ"), np.kron(ID2, SZ))

    def test_three_letters_shape(self):
        assert pauli_string("XYZ").shape == (8, 8)

    def test_empty_label_raises(self):
        with pytest.raises(ValueError):
            pauli_string("")

    def test_unknown_char_raises(self):
        with pytest.raises(ValueError):
            pauli_string("A")
