"""Telemetry core: spans, counters, capture/merge, trace files, logger."""

import json

import pytest

from repro import telemetry
from repro.campaigns.spec import Cell
from repro.campaigns.store import ResultStore
from repro.telemetry import core as tcore
from repro.telemetry import log as tlog


@pytest.fixture(autouse=True)
def _clean_telemetry(monkeypatch):
    """Every test starts disabled and empty, and leaves no global state.

    ``enable()`` exports ``REPRO_TELEMETRY=1`` (so campaign workers
    inherit collection); restoring the environment here keeps telemetry
    tests from leaking collection into unrelated tests.
    """
    monkeypatch.delenv(tcore.ENV_TELEMETRY, raising=False)
    telemetry.disable()
    telemetry.reset()
    tlog.configure(0)
    yield
    telemetry.disable()
    telemetry.reset()
    tlog.configure(0)


class TestSpans:
    def test_nesting_builds_slash_paths(self):
        telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        snap = telemetry.snapshot()
        paths = {s["path"]: s for s in snap["spans"]}
        assert set(paths) == {"outer", "outer/inner"}
        assert paths["outer"]["count"] == 1
        assert paths["outer/inner"]["count"] == 2
        # Parent wall time includes its children.
        assert paths["outer"]["total_s"] >= paths["outer/inner"]["total_s"]

    def test_exception_marks_error_and_propagates(self):
        telemetry.enable()
        with pytest.raises(RuntimeError, match="boom"):
            with telemetry.span("failing"):
                raise RuntimeError("boom")
        (span_data,) = telemetry.snapshot()["spans"]
        assert span_data["errors"] == 1
        # The stack unwound: a later span is a root, not a child.
        with telemetry.span("after"):
            pass
        assert {s["path"] for s in telemetry.snapshot()["spans"]} == {
            "failing",
            "after",
        }

    def test_group_separates_percentile_buckets(self):
        telemetry.enable()
        with telemetry.span("cell", group="a"):
            pass
        with telemetry.span("cell", group="b"):
            pass
        groups = {s["group"] for s in telemetry.snapshot()["spans"]}
        assert groups == {"a", "b"}

    def test_observe_records_like_a_span(self):
        telemetry.enable()
        telemetry.observe("queue_wait", 1.5)
        (span_data,) = telemetry.snapshot()["spans"]
        assert span_data["path"] == "queue_wait"
        assert span_data["total_s"] == 1.5

    def test_duration_retention_is_bounded(self):
        stats = tcore.SpanStats()
        for _ in range(tcore.MAX_DURATIONS + 10):
            stats.add(0.001)
        assert len(stats.durations) == tcore.MAX_DURATIONS
        assert stats.count == tcore.MAX_DURATIONS + 10
        assert stats.truncated


class TestDisabled:
    def test_span_is_shared_noop_singleton(self):
        assert telemetry.span("a") is telemetry.span("b")
        assert telemetry.span("a") is tcore._NULL_SPAN

    def test_nothing_is_recorded(self):
        with telemetry.span("a"):
            telemetry.counter("c")
            telemetry.gauge("g", 1.0)
            telemetry.observe("o", 0.5)
        snap = telemetry.snapshot()
        assert snap["spans"] == []
        assert snap["counters"] == {}
        assert snap["gauges"] == {}

    def test_capture_snapshots_to_none(self):
        with telemetry.capture() as cap:
            with telemetry.span("a"):
                pass
        assert cap.collector is None
        assert cap.snapshot() is None

    def test_merge_snapshot_is_noop(self):
        telemetry.merge_snapshot({"counters": {"c": 3}})
        assert telemetry.snapshot()["counters"] == {}

    def test_env_enables_collection(self, monkeypatch, tmp_path):
        monkeypatch.setenv(tcore.ENV_TELEMETRY, "1")
        tcore._init_from_env()
        assert telemetry.enabled()
        assert telemetry.trace_path() is None
        telemetry.disable()
        trace = tmp_path / "t.jsonl"
        monkeypatch.setenv(tcore.ENV_TELEMETRY, str(trace))
        tcore._init_from_env()
        assert telemetry.enabled()
        assert telemetry.trace_path() == trace


class TestCaptureAndMerge:
    def test_capture_tees_into_global_trace(self):
        telemetry.enable()
        with telemetry.capture() as cap:
            with telemetry.span("a"):
                telemetry.counter("c", 2)
        assert cap.snapshot() == telemetry.snapshot()

    def test_capture_scopes_to_its_block(self):
        telemetry.enable()
        with telemetry.span("before"):
            pass
        with telemetry.capture() as cap:
            with telemetry.span("during"):
                pass
        with telemetry.span("after"):
            pass
        assert {s["path"] for s in cap.snapshot()["spans"]} == {"during"}

    def test_merge_is_order_independent(self):
        telemetry.enable()
        snap_a = {
            "spans": [
                {
                    "path": "p",
                    "group": "",
                    "count": 2,
                    "total_s": 1.0,
                    "min_s": 0.4,
                    "max_s": 0.6,
                    "errors": 1,
                    "durations_s": [0.4, 0.6],
                }
            ],
            "counters": {"c": 3},
            "gauges": {"g": 2.0},
        }
        snap_b = {
            "spans": [
                {
                    "path": "p",
                    "group": "",
                    "count": 1,
                    "total_s": 0.2,
                    "min_s": 0.2,
                    "max_s": 0.2,
                    "errors": 0,
                    "durations_s": [0.2],
                }
            ],
            "counters": {"c": 4, "d": 1},
            "gauges": {"g": 5.0},
        }
        ab, ba = tcore.Collector(), tcore.Collector()
        ab.merge_snapshot(snap_a)
        ab.merge_snapshot(snap_b)
        ba.merge_snapshot(snap_b)
        ba.merge_snapshot(snap_a)
        merged = ab.snapshot()
        (span_data,) = merged["spans"]
        assert span_data["count"] == 3
        assert span_data["total_s"] == pytest.approx(1.2)
        assert span_data["min_s"] == 0.2
        assert span_data["max_s"] == 0.6
        assert span_data["errors"] == 1
        assert merged["counters"] == {"c": 7, "d": 1}
        assert merged["gauges"] == {"g": 5.0}  # gauges keep the max
        # Deterministic: the same pair merged in either order agrees
        # (durations may differ in order past the cap; not below it).
        assert merged["counters"] == ba.snapshot()["counters"]
        assert sorted(merged["spans"][0]["durations_s"]) == sorted(
            ba.snapshot()["spans"][0]["durations_s"]
        )

    def test_merge_lands_in_active_captures(self):
        telemetry.enable()
        with telemetry.capture() as cap:
            telemetry.merge_snapshot({"counters": {"c": 2}})
        assert cap.snapshot()["counters"] == {"c": 2}
        assert telemetry.snapshot()["counters"] == {"c": 2}


class TestTraceFile:
    def test_round_trip(self, tmp_path):
        telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        telemetry.counter("hits", 3)
        telemetry.gauge("workers", 4)
        path = telemetry.write_trace(tmp_path / "trace.jsonl")
        loaded = telemetry.read_trace(path)
        assert loaded["meta"]["format"] == tcore.TRACE_FORMAT
        assert {s["path"] for s in loaded["spans"]} == {"outer", "outer/inner"}
        assert loaded["counters"] == {"hits": 3}
        assert loaded["gauges"] == {"workers": 4}

    def test_write_without_path_returns_none(self):
        telemetry.enable()  # no trace path configured
        assert telemetry.write_trace() is None

    def test_newer_format_is_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "format": tcore.TRACE_FORMAT + 1})
            + "\n"
        )
        with pytest.raises(ValueError, match="newer"):
            telemetry.read_trace(path)


class TestStoreBackCompat:
    CELL = Cell(benchmark="HS", num_qubits=4, config="gau+par")

    def test_disabled_records_keep_historical_layout(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        record = store.put(
            self.CELL, {"fidelity": 0.9}, fingerprint="f", elapsed_s=0.1
        )
        # The exact historical key set — telemetry must not add fields
        # when collection is off.
        assert set(record) == {
            "key",
            "fingerprint",
            "cell",
            "result",
            "elapsed_s",
            "timestamp",
            "format",
        }

    def test_telemetry_rides_along_when_present(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        snap = {"counters": {"c": 1}, "spans": [], "gauges": {}}
        store.put(
            self.CELL,
            {"fidelity": 0.9},
            fingerprint="f",
            telemetry=snap,
        )
        reloaded = ResultStore(store.path).load()
        (record,) = reloaded.records()
        assert record["telemetry"] == snap

    def test_old_records_without_telemetry_load(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.put(self.CELL, {"fidelity": 0.9}, fingerprint="f")
        reloaded = ResultStore(store.path).load()
        (record,) = reloaded.records()
        assert "telemetry" not in record
        assert record["result"] == {"fidelity": 0.9}


class TestLogger:
    def test_message_then_fields_on_stderr(self, capsys):
        tlog.get_logger("t").info("something happened", cells=4, store="x")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "something happened cells=4 store=x\n"

    def test_quiet_suppresses_info_not_warnings(self, capsys):
        tlog.configure(-1)
        logger = tlog.get_logger("t")
        logger.info("chatty")
        logger.warning("important")
        logger.error("broken")
        err = capsys.readouterr().err
        assert "chatty" not in err
        assert "important" in err
        assert "broken" in err

    def test_debug_needs_verbose(self, capsys):
        logger = tlog.get_logger("t")
        logger.debug("details")
        assert "details" not in capsys.readouterr().err
        tlog.configure(1)
        logger.debug("details")
        assert "details" in capsys.readouterr().err

    def test_get_logger_is_cached(self):
        assert tlog.get_logger("same") is tlog.get_logger("same")
