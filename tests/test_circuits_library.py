import numpy as np
import pytest

from repro.circuits.library import (
    BENCHMARKS,
    PAPER_SIZES,
    google_random_circuit,
    hidden_shift,
    ising,
    qaoa,
    qft,
    qpe,
    quantum_volume,
)
from repro.circuits.library.hidden_shift import hidden_shift_answer
from repro.circuits.library.qft import qft_matrix
from repro.qmath.decompose import global_phase_aligned
from repro.qmath.states import basis_state


class TestQFT:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_matrix(self, n):
        assert global_phase_aligned(qft(n).unitary(), qft_matrix(n))

    def test_without_swaps_is_bit_reversed(self):
        n = 3
        u = qft(n, include_swaps=False).unitary()
        full = qft_matrix(n)
        # Reversing output bits must recover the DFT.
        perm = np.zeros((8, 8), dtype=complex)
        for i in range(8):
            rev = int(format(i, "03b")[::-1], 2)
            perm[rev, i] = 1.0
        assert global_phase_aligned(perm @ u, full)

    def test_gate_count_quadratic(self):
        assert qft(6).count("cp") == 15


class TestHiddenShift:
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_reveals_shift(self, n, rng):
        shift = tuple(int(b) for b in rng.integers(0, 2, n))
        c = hidden_shift(n, shift=shift)
        psi = c.output_state()
        expected = basis_state(list(shift))
        assert abs(np.vdot(expected, psi)) ** 2 > 1.0 - 1e-9

    def test_seeded_shift_matches_helper(self):
        n, seed = 4, 11
        c = hidden_shift(n, seed=seed)
        psi = c.output_state()
        expected = basis_state(list(hidden_shift_answer(seed, n)))
        assert abs(np.vdot(expected, psi)) ** 2 > 1.0 - 1e-9

    def test_odd_size_rejected(self):
        with pytest.raises(ValueError):
            hidden_shift(5)


class TestQPE:
    def test_exact_phase_recovered(self):
        # phi = 1/4 is exactly representable with 2 counting qubits.
        c = qpe(3, phase=0.25)
        psi = c.output_state()
        # counting register should read binary 01 (0.25 = 0.01b), target in |1>.
        expected = basis_state([0, 1, 1])
        assert abs(np.vdot(expected, psi)) ** 2 > 1.0 - 1e-9

    def test_inexact_phase_peaks_nearby(self):
        c = qpe(4, phase=1.0 / 3.0)
        psi = c.output_state()
        probs = np.abs(psi) ** 2
        best = int(np.argmax(probs))
        # 1/3 ~ 0.0101b; with 3 counting qubits best estimate is 011 (3/8).
        assert probs[best] > 0.25

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            qpe(1)


class TestQAOA:
    def test_structure(self):
        c = qaoa(5, seed=1)
        assert c.count("h") == 5
        assert c.count("rx") == 5
        assert c.count("rzz") >= 4  # connected graph on 5 vertices

    def test_seed_determinism(self):
        a = qaoa(5, seed=3)
        b = qaoa(5, seed=3)
        assert [g.name for g in a.gates] == [g.name for g in b.gates]

    def test_rounds_scale_gates(self):
        assert len(qaoa(4, p=2, seed=1)) > len(qaoa(4, p=1, seed=1))


class TestIsing:
    def test_structure(self):
        c = ising(5, steps=2)
        assert c.count("rzz") == 2 * 4
        assert c.count("rx") == 2 * 5

    def test_chain_locality(self):
        for g in ising(6).two_qubit_gates():
            assert abs(g.qubits[0] - g.qubits[1]) == 1


class TestGRC:
    def test_depth_layers(self):
        c = google_random_circuit(4, depth=6, seed=1)
        assert c.count("cz") > 0

    def test_no_repeated_sqrt_gate(self):
        # The Google scheme never repeats the same sqrt gate on a qubit.
        c = google_random_circuit(3, depth=10, seed=2)
        last: dict[int, tuple] = {}
        for g in c.gates:
            if g.num_qubits == 1:
                key = (g.name, g.params)
                assert last.get(g.qubits[0]) != key
                last[g.qubits[0]] = key

    def test_determinism(self):
        a = google_random_circuit(4, seed=9)
        b = google_random_circuit(4, seed=9)
        assert [repr(g) for g in a.gates] == [repr(g) for g in b.gates]


class TestQV:
    def test_structure(self):
        c = quantum_volume(4, seed=1)
        assert c.count("cx") == 3 * 2 * 4  # 3 cx per pair, 2 pairs, 4 layers

    def test_custom_depth(self):
        c = quantum_volume(4, depth=2, seed=1)
        assert c.count("cx") == 3 * 2 * 2


class TestRegistry:
    def test_all_benchmarks_build(self):
        for name, builder in BENCHMARKS.items():
            c = builder(4, seed=0)
            assert c.num_qubits == 4
            assert len(c) > 0

    def test_paper_sizes_present(self):
        assert PAPER_SIZES["HS"] == (4, 6, 12)
        assert PAPER_SIZES["QFT"] == (4, 6, 9)
        for name in BENCHMARKS:
            assert name in PAPER_SIZES
