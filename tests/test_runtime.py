import numpy as np
import pytest

from repro.circuits import Circuit, compile_circuit, transpile
from repro.circuits.gates import Gate
from repro.circuits.library import qaoa
from repro.device import Device, grid, make_device, uniform_crosstalk
from repro.runtime import (
    drives_for_layer,
    execute_density,
    execute_statevector,
    ideal_schedule_state,
    virtual_matrix,
)
from repro.scheduling import Layer, par_schedule, zzx_schedule
from repro.sim.density import DecoherenceModel


@pytest.fixture(scope="module")
def clean_device6(grid23=None):
    """Device with (almost) zero crosstalk to isolate pulse errors."""
    from repro.device import grid as make_grid

    topo = make_grid(2, 3)
    return Device(topo, uniform_crosstalk(topo, 1e-6))


class TestBinding:
    def test_drives_match_gate_count(self, lib_pert):
        layer = Layer(
            gates=[Gate("rx90", (0,)), Gate("rzx90", (1, 2))],
            identities=[Gate("id", (3,))],
        )
        drives = drives_for_layer(layer, lib_pert, 0.25)
        assert len(drives) == 3
        assert drives[1].step_ops.shape[-1] == 4

    def test_dt_mismatch_rejected(self, lib_pert):
        layer = Layer(gates=[Gate("rx90", (0,))])
        with pytest.raises(ValueError):
            drives_for_layer(layer, lib_pert, 0.5)

    def test_virtual_matrix(self):
        from repro.qmath.unitaries import rz

        assert np.allclose(virtual_matrix(Gate("rz", (0,), (0.4,))), rz(0.4))

    def test_virtual_matrix_rejects_physical(self):
        with pytest.raises(ValueError):
            virtual_matrix(Gate("rx90", (0,)))


class TestExecuteStatevector:
    def test_noiseless_device_near_ideal(self, clean_device6, lib_pert):
        topo = clean_device6.topology
        circuit = compile_circuit(qaoa(6, seed=1), topo).circuit
        schedule = zzx_schedule(circuit, topo)
        result = execute_statevector(schedule, clean_device6, lib_pert)
        assert result.fidelity > 1.0 - 1e-4

    def test_crosstalk_degrades_baseline(self, device6, lib_gaussian):
        topo = device6.topology
        circuit = compile_circuit(qaoa(6, seed=1), topo).circuit
        result = execute_statevector(par_schedule(circuit), device6, lib_gaussian)
        assert result.fidelity < 0.9

    def test_zzx_pert_recovers_fidelity(self, device6, lib_pert, lib_gaussian):
        topo = device6.topology
        circuit = compile_circuit(qaoa(6, seed=1), topo).circuit
        base = execute_statevector(par_schedule(circuit), device6, lib_gaussian)
        ours = execute_statevector(
            zzx_schedule(circuit, topo), device6, lib_pert
        )
        assert ours.fidelity > 0.9
        assert ours.fidelity > base.fidelity

    def test_keep_state(self, device6, lib_gaussian):
        circuit = transpile(Circuit(6).h(0))
        schedule = par_schedule(circuit)
        result = execute_statevector(
            schedule, device6, lib_gaussian, keep_state=True
        )
        assert result.state is not None
        assert np.isclose(np.linalg.norm(result.state), 1.0)

    def test_device_size_mismatch_rejected(self, device6, lib_gaussian):
        schedule = par_schedule(transpile(Circuit(3).h(0)))
        with pytest.raises(ValueError):
            execute_statevector(schedule, device6, lib_gaussian)

    def test_empty_circuit_perfect(self, device6, lib_gaussian):
        schedule = par_schedule(Circuit(6))
        result = execute_statevector(schedule, device6, lib_gaussian)
        assert result.fidelity == 1.0
        assert result.execution_time_ns == 0.0


class TestExecuteDensity:
    def test_no_decoherence_matches_statevector(self, device6, lib_pert):
        topo = device6.topology
        circuit = compile_circuit(qaoa(4, seed=1), topo).circuit
        schedule = zzx_schedule(circuit, topo)
        huge = DecoherenceModel(t1_ns=1e12, t2_ns=1e12)
        sv = execute_statevector(schedule, device6, lib_pert)
        dm = execute_density(schedule, device6, lib_pert, huge)
        assert np.isclose(sv.fidelity, dm.fidelity, atol=1e-6)

    def test_decoherence_lowers_fidelity(self, device6, lib_pert):
        topo = device6.topology
        circuit = compile_circuit(qaoa(4, seed=1), topo).circuit
        schedule = zzx_schedule(circuit, topo)
        mild = DecoherenceModel(t1_ns=200e3, t2_ns=200e3)
        harsh = DecoherenceModel(t1_ns=5e3, t2_ns=5e3)
        f_mild = execute_density(schedule, device6, lib_pert, mild).fidelity
        f_harsh = execute_density(schedule, device6, lib_pert, harsh).fidelity
        assert f_harsh < f_mild

    def test_trace_preserved(self, device6, lib_gaussian):
        circuit = transpile(Circuit(6).h(0).cx(0, 1))
        schedule = par_schedule(circuit)
        deco = DecoherenceModel(t1_ns=1e5, t2_ns=1e5)
        result = execute_density(
            schedule, device6, lib_gaussian, deco, keep_state=True
        )
        assert np.isclose(np.trace(result.density).real, 1.0, atol=1e-9)

    def test_large_device_rejected(self, device12, lib_gaussian):
        schedule = par_schedule(Circuit(12))
        deco = DecoherenceModel(t1_ns=1e5, t2_ns=1e5)
        with pytest.raises(ValueError):
            execute_density(schedule, device12, lib_gaussian, deco)


class TestIdealState:
    def test_identities_are_noops(self):
        c = transpile(Circuit(2).h(0).cx(0, 1))
        schedule = par_schedule(c)
        schedule.layers[0].identities.append(Gate("id", (1,)))
        ideal = ideal_schedule_state(schedule)
        assert abs(np.vdot(ideal, c.output_state())) ** 2 > 1.0 - 1e-12
