#!/usr/bin/env python3
"""Characterize a device's ZZ crosstalk map with Ramsey pairs.

Runs the standard two-Ramsey-experiments-per-coupling protocol (paper
Sec 7.4, [14]) on a simulated 3x4 grid and compares the measured map with
the device's ground truth — the calibration loop a ZZ-aware compiler would
run before scheduling.

Run:  python examples/characterize_device.py
"""

from repro.analysis import render_table
from repro.characterization import measure_device_zz_map
from repro.device import grid, make_device
from repro.units import KHZ


def main() -> None:
    device = make_device(grid(3, 4), seed=7)
    measured = measure_device_zz_map(device)

    rows = []
    worst = 0.0
    for edge in device.topology.edges:
        true_khz = device.crosstalk[edge] / KHZ
        got_khz = measured[edge] / KHZ
        error = abs(got_khz - true_khz) / true_khz
        worst = max(worst, error)
        rows.append(
            {
                "coupling": str(edge),
                "true_khz": true_khz,
                "measured_khz": got_khz,
                "rel_error_pct": 100.0 * error,
            }
        )
    print(render_table(rows))
    print(f"\nworst relative error: {100.0 * worst:.2f}%")


if __name__ == "__main__":
    main()
