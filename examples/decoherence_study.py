#!/usr/bin/env python3
"""ZZ suppression under decoherence (Fig. 23 workload).

ZZXSched trades parallelism for suppression, so longer schedules lose more
to T1/T2 — this example shows the trade-off still favors co-optimization
across realistic coherence times.

Run:  python examples/decoherence_study.py
"""

from repro.analysis import render_table
from repro.circuits import compile_circuit
from repro.circuits.library import BENCHMARKS
from repro.device import grid, make_device
from repro.pulses import build_library
from repro.runtime import execute_density
from repro.scheduling import par_schedule, zzx_schedule
from repro.sim.density import DecoherenceModel
from repro.units import US


def main() -> None:
    device = make_device(grid(2, 3), seed=7)
    compiled = compile_circuit(BENCHMARKS["Ising"](6), device.topology)
    schedules = {
        "gau+par": (par_schedule(compiled.circuit), build_library("gaussian")),
        "pert+zzx": (
            zzx_schedule(compiled.circuit, device.topology),
            build_library("pert"),
        ),
    }
    rows = []
    for t1_us in (100.0, 200.0, 500.0, 1000.0):
        deco = DecoherenceModel(t1_ns=t1_us * US, t2_ns=t1_us * US)
        row = {"T1=T2 (us)": t1_us}
        for label, (schedule, library) in schedules.items():
            out = execute_density(schedule, device, library, deco)
            row[label] = out.fidelity
        row["improvement"] = row["pert+zzx"] / row["gau+par"]
        rows.append(row)
    print(render_table(rows))


if __name__ == "__main__":
    main()
