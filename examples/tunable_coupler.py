#!/usr/bin/env python3
"""Tunable-coupler devices: how many couplings must be turned off? (Fig. 25)

On devices with tunable couplers, ZZ crosstalk can be removed by switching
couplings off — but switching incurs control noise.  ZZ-aware scheduling
leaves only the remaining-set couplings to switch off, a 10-20x reduction.

Run:  python examples/tunable_coupler.py
"""

from repro.analysis import render_table
from repro.circuits import compile_circuit
from repro.circuits.library import BENCHMARKS
from repro.device import grid
from repro.scheduling import couplings_to_turn_off, par_schedule, zzx_schedule


def main() -> None:
    topology = grid(3, 4)
    rows = []
    for name in ("HS", "QAOA", "Ising", "QV", "GRC"):
        for size in (4, 6):
            compiled = compile_circuit(BENCHMARKS[name](size), topology)
            baseline = couplings_to_turn_off(
                par_schedule(compiled.circuit), topology, baseline=True
            )
            ours = couplings_to_turn_off(
                zzx_schedule(compiled.circuit, topology), topology, baseline=False
            )
            rows.append(
                {
                    "benchmark": f"{name}-{size}",
                    "baseline_off": baseline,
                    "zzxsched_off": ours,
                    "reduction": baseline / max(ours, 1e-9),
                }
            )
    print(render_table(rows))


if __name__ == "__main__":
    main()
