#!/usr/bin/env python3
"""Measure effective ZZ strength with Ramsey experiments (paper Sec 7.4).

Reproduces Fig. 27 on the simulated 3-transmon line Q1-Q2-Q3: the original
circuit (A) sees the bare ~200 kHz effective ZZ; the two compiled circuits
(B: identity pulses on Q2; C: identity pulses on Q1 and Q3) suppress it
below the paper's 11 kHz threshold.

Run:  python examples/ramsey_zz.py
"""

from repro.analysis import render_table
from repro.experiments.ramsey import (
    RamseySetup,
    measure_effective_zz,
    ramsey_fringe,
    tau_grid,
)


def main() -> None:
    setup = RamseySetup()
    print(
        f"device: Q1-Q2-Q3 line, couplings "
        f"{setup.zz12_khz:.0f}/{setup.zz23_khz:.0f} kHz "
        f"(bare effective ZZ ~{4 * setup.zz12_khz:.0f} kHz per coupling)\n"
    )

    rows = []
    for control in ("q1", "q3", "both"):
        for variant, label in (
            ("A", "original (idle)"),
            ("B", "compiled I (I on Q2)"),
            ("C", "compiled II (I on Q1,Q3)"),
        ):
            zz = measure_effective_zz(setup, variant, control)
            rows.append(
                {
                    "control": control,
                    "circuit": label,
                    "effective_zz_khz": zz,
                }
            )
    print(render_table(rows))

    # Show one raw fringe pair so the oscillation is visible.
    taus = tau_grid(setup, "A")[:10]
    p0 = ramsey_fringe(setup, "A", "q1", False, taus)
    p1 = ramsey_fringe(setup, "A", "q1", True, taus)
    print("\nfirst Ramsey fringe samples (circuit A, control q1):")
    print(
        render_table(
            [
                {"tau_ns": t, "P1(ctrl=|0>)": a, "P1(ctrl=|1>)": b}
                for t, a, b in zip(taus, p0, p1)
            ]
        )
    )


if __name__ == "__main__":
    main()
