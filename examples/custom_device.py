#!/usr/bin/env python3
"""Use the scheduler on your own device topology (here: IBMQ Vigo).

Shows the layer-by-layer output of ZZXSched — which gates run together,
which qubits get supplemental identity pulses, and the per-layer NQ / NC
suppression metrics of Section 5.

Run:  python examples/custom_device.py
"""

from repro.analysis import render_table
from repro.circuits import Circuit, compile_circuit
from repro.device import ibmq_vigo, make_device
from repro.pulses import build_library
from repro.runtime import execute_statevector
from repro.scheduling import (
    layer_suppression_metrics,
    par_schedule,
    zzx_schedule,
)


def main() -> None:
    topology = ibmq_vigo()
    device = make_device(topology, seed=11)
    print(f"device: {topology!r} (the paper's Fig. 1)")

    # A small GHZ-like circuit.
    circuit = Circuit(5)
    circuit.h(1)
    for target in (0, 2, 3):
        circuit.cx(1, target)
    circuit.cx(3, 4)
    compiled = compile_circuit(circuit, topology, layout="trivial")

    schedule = zzx_schedule(compiled.circuit, topology)
    rows = []
    for index, layer in enumerate(schedule.layers):
        metrics = layer_suppression_metrics(layer, topology)
        rows.append(
            {
                "layer": index,
                "gates": " ".join(repr(g) for g in layer.gates),
                "identities": sorted(q for g in layer.identities for q in g.qubits),
                "NQ": metrics.nq,
                "NC": metrics.nc,
            }
        )
    print(render_table(rows))

    baseline = execute_statevector(
        par_schedule(compiled.circuit), device, build_library("gaussian")
    )
    ours = execute_statevector(schedule, device, build_library("pert"))
    print(
        f"\nfidelity: baseline {baseline.fidelity:.4f} -> "
        f"co-optimized {ours.fidelity:.4f}"
    )


if __name__ == "__main__":
    main()
