#!/usr/bin/env python3
"""Quickstart: suppress ZZ crosstalk for a QAOA circuit on a 3x4 grid.

Compares the state-of-the-art baseline (Gaussian pulses + parallelism-
maximizing scheduling) against the paper's co-optimization (Pert pulses +
ZZXSched) at the Hamiltonian level.

Run:  python examples/quickstart.py
"""

from repro.analysis import render_table
from repro.circuits import compile_circuit
from repro.circuits.library import BENCHMARKS
from repro.device import grid, make_device
from repro.pulses import build_library
from repro.runtime import execute_statevector
from repro.scheduling import par_schedule, zzx_schedule


def main() -> None:
    # The paper's evaluation device: a 3x4 grid with per-coupling ZZ
    # crosstalk sampled from N(200 kHz, 50 kHz).
    device = make_device(grid(3, 4), seed=7)

    # Compile a 6-qubit QAOA MaxCut circuit to the IBMQ native gate set,
    # routed onto the grid.
    circuit = BENCHMARKS["QAOA"](6)
    compiled = compile_circuit(circuit, device.topology)
    print(
        f"compiled QAOA-6: {len(compiled.circuit)} native gates "
        f"({compiled.circuit.count('rzx90')} two-qubit)"
    )

    # Baseline: Gaussian pulses, ASAP scheduling.
    baseline = execute_statevector(
        par_schedule(compiled.circuit), device, build_library("gaussian")
    )
    # Ours: ZZ-suppressing Pert pulses + ZZ-aware scheduling.
    ours = execute_statevector(
        zzx_schedule(compiled.circuit, device.topology),
        device,
        build_library("pert"),
    )

    rows = [
        {
            "config": "Gau+ParSched (baseline)",
            "fidelity": baseline.fidelity,
            "layers": baseline.num_layers,
            "time_ns": baseline.execution_time_ns,
        },
        {
            "config": "Pert+ZZXSched (ours)",
            "fidelity": ours.fidelity,
            "layers": ours.num_layers,
            "time_ns": ours.execution_time_ns,
        },
    ]
    print(render_table(rows))
    print(f"\nfidelity improvement: {ours.fidelity / baseline.fidelity:.1f}x")


if __name__ == "__main__":
    main()
