#!/usr/bin/env python3
"""Inspect the four pulse methods and their ZZ suppression (Figs 16/28).

Prints, for each method, the Rx(pi/2) waveform statistics and the joint
infidelity with an idle neighbor across crosstalk strengths.

Run:  python examples/pulse_gallery.py
"""

import numpy as np

from repro.analysis import render_table
from repro.experiments.pulse_level import one_qubit_joint_infidelity
from repro.pulses import build_library
from repro.units import MHZ

METHODS = ("gaussian", "dcg", "optctrl", "pert")
STRENGTHS_MHZ = (0.2, 0.5, 1.0, 2.0)


def main() -> None:
    print("Rx(pi/2) waveforms:")
    rows = []
    for method in METHODS:
        pulse = build_library(method)["rx90"]
        rows.append(
            {
                "method": method,
                "duration_ns": pulse.duration,
                "peak_mhz": max(
                    np.max(np.abs(pulse.channel("x"))),
                    np.max(np.abs(pulse.channel("y"))),
                )
                / MHZ,
                "area_x": float(np.sum(pulse.channel("x")) * pulse.dt),
            }
        )
    print(render_table(rows))

    print("\njoint infidelity vs an idle neighbor (Fig. 16 metric):")
    rows = []
    for method in METHODS:
        pulse = build_library(method)["rx90"]
        row = {"method": method}
        for mhz in STRENGTHS_MHZ:
            row[f"{mhz}MHz"] = one_qubit_joint_infidelity(pulse, mhz * MHZ)
        rows.append(row)
    print(render_table(rows, floatfmt=".2e"))

    print("\nascii waveform of the Pert Rx(pi/2) x-quadrature:")
    pulse = build_library("pert")["rx90"]
    samples = pulse.channel("x") / MHZ
    peak = np.max(np.abs(samples)) or 1.0
    for k in range(0, pulse.num_steps, 4):
        bar = int(30 * abs(samples[k]) / peak)
        sign = "+" if samples[k] >= 0 else "-"
        print(f"  t={k * pulse.dt:5.2f}ns {samples[k]:+7.1f} MHz {sign * bar}")


if __name__ == "__main__":
    main()
