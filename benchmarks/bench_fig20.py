"""Fig. 20 — overall fidelity improvements (the headline result).

Paper claims: up to 81x (11x on average) improvement over Gau+ParSched;
>0.9 fidelity on most benchmarks; similar results for OptCtrl and Pert.
"""

import numpy as np

from repro.experiments import fig20_overall


def test_fig20_overall_improvements(benchmark, show):
    result = benchmark.pedantic(fig20_overall.run, rounds=1, iterations=1)
    show(result)
    best, mean = fig20_overall.max_and_mean_improvement(result)
    show(
        type(result)(
            "fig20-headline",
            "improvement summary",
            rows=[{"max_improvement": best, "mean_improvement": mean}],
        )
    )
    # Shape claims (paper: 81x max / 11x mean on the full 4-12 sweep).
    assert best > 3.0
    assert mean > 1.5
    # Our configs reach > 0.9 fidelity on most benchmarks.
    ours = np.array(result.column("pert+zzx"))
    assert np.mean(ours > 0.9) >= 0.5
    # Pulse-method insensitivity: OptCtrl and Pert land close together.
    octl = np.array(result.column("optctrl+zzx"))
    assert np.mean(np.abs(octl - ours)) < 0.12
