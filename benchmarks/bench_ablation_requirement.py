"""Ablation — the suppression requirement R of Algorithm 2.

Stricter thresholds force more layers (less parallelism) for better
suppression; looser ones recover ParSched-like behavior.  The paper's
default is NQ < max degree, NC <= |E|/2.
"""

from repro.circuits import compile_circuit
from repro.circuits.library import BENCHMARKS
from repro.experiments.common import library, paper_device
from repro.experiments.result import ExperimentResult
from repro.runtime import execute_statevector
from repro.scheduling import SuppressionRequirement, zzx_schedule
from repro.scheduling.analysis import ScheduleReport


def run_ablation() -> ExperimentResult:
    result = ExperimentResult(
        "ablation-requirement",
        "suppression requirement thresholds (QAOA-6)",
    )
    device = paper_device()
    topo = device.topology
    lib = library("pert")
    compiled = compile_circuit(BENCHMARKS["QAOA"](6), topo)
    settings = {
        "strict (NQ<3, NC<=4)": SuppressionRequirement(3, 4.0),
        "paper (NQ<4, NC<=8.5)": SuppressionRequirement.from_topology(topo),
        "loose (NQ<12, NC<=17)": SuppressionRequirement(12, 17.0),
    }
    for label, requirement in settings.items():
        schedule = zzx_schedule(compiled.circuit, topo, requirement=requirement)
        out = execute_statevector(schedule, device, lib)
        report = ScheduleReport.from_schedule(schedule, topo)
        result.rows.append(
            {
                "requirement": label,
                "layers": schedule.num_layers,
                "mean_nc": report.mean_nc,
                "fidelity": out.fidelity,
            }
        )
    return result


def test_requirement_ablation(benchmark, show):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    show(result)
    rows = {r["requirement"]: r for r in result.rows}
    strict = rows["strict (NQ<3, NC<=4)"]
    loose = rows["loose (NQ<12, NC<=17)"]
    # Stricter requirements cannot reduce the layer count...
    assert strict["layers"] >= loose["layers"]
    # ...and buy lower per-layer unsuppressed-crosstalk counts.
    assert strict["mean_nc"] <= loose["mean_nc"] + 1e-9
