"""Layer-walk driver throughput: cached vs uncached, statevector vs density.

The workload is a 6-qubit, 6-Trotter-step Ising schedule on the 2x3 grid —
bond and transverse layers repeat every step, which is exactly the pattern
the layer-propagator cache amortizes.  Acceptance (from the PR issue): the cache must deliver a
>= 1.5x speedup on the repeated-layer *density* walk with bit-identical
fidelities, since the density path rebuilds the dominant ``4^n`` layer
unitary on every repetition when uncached.

The first timed variant used to absorb one-time process warmup (BLAS
thread-pool spin-up, lazy imports), which BENCH_1 recorded as a phantom
"cached slower than uncached" statevector regression; ``_timed`` now runs
an untimed warmup execution first.  Since then ``cache=True`` resolves
per backend (statevector never allocated propagators, only drive lists,
so the cache was pure key-build overhead there) — cached and uncached
statevector walks are the same code path and must time the same.
"""

import time

from repro.circuits import compile_circuit
from repro.circuits.library.ising import ising
from repro.device import grid, make_device
from repro.pulses import build_library
from repro.runtime import execute
from repro.scheduling import zzx_schedule
from repro.sim.density import DecoherenceModel
from repro.units import US

_DECO = DecoherenceModel(t1_ns=200.0 * US, t2_ns=200.0 * US)


_STACK = None


def _stack():
    """Device/library/schedule, built once — the timings measure only the
    layer walk, not schedule compilation (which is identical across
    variants and would just add noise to the cached-vs-uncached compare)."""
    global _STACK
    if _STACK is None:
        device = make_device(grid(2, 3), seed=7)
        library = build_library("pert")
        compiled = compile_circuit(ising(6, steps=6), device.topology)
        schedule = zzx_schedule(compiled.circuit, device.topology)
        _STACK = (device, library, schedule)
    return _STACK


#: (backend, cache) -> (wall seconds, fidelity); reused by the speedup
#: assertion so the grid is timed once, not per test.
_timings: dict[tuple[str, bool], tuple[float, float]] = {}


_warmed = False


def _warmup() -> None:
    """One untimed execution before any timing.

    The first execute in the process pays BLAS thread-pool spin-up and
    lazy imports; without this the first variant timed looks artificially
    slow (BENCH_1's phantom statevector-cached regression).  Called
    outside the benchmarked callable so the warmup itself is never timed.
    """
    global _warmed
    if not _warmed:
        _warmed = True
        device, library, schedule = _stack()
        execute(schedule, device, library, "statevector", cache=False)


#: Per-variant measurement repeats; the minimum is kept.  Single-shot
#: timings on a shared CI host jitter by ~10%, which is enough to invert
#: the statevector cached-vs-uncached comparison (identical code paths).
ROUNDS = 3


def _timed(backend: str, cache: bool) -> tuple[float, float]:
    key = (backend, cache)
    if key not in _timings:
        device, library, schedule = _stack()
        kwargs = {}
        if backend == "density":
            kwargs["decoherence"] = _DECO
        best = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            out = execute(
                schedule, device, library, backend, cache=cache, **kwargs
            )
            best = min(best, time.perf_counter() - start)
        _timings[key] = (best, out.fidelity)
    return _timings[key]


def _bench(benchmark, backend: str, cache: bool) -> None:
    """Measure one variant under pytest-benchmark and share its min.

    The benchmark stats record *per-execute* wall time (ROUNDS rounds);
    the minimum feeds ``_timings`` so the speedup assertion agrees with
    the numbers in the BENCH snapshot.
    """
    _warmup()
    device, library, schedule = _stack()
    kwargs = {"decoherence": _DECO} if backend == "density" else {}
    result = {}

    def run():
        result["out"] = execute(
            schedule, device, library, backend, cache=cache, **kwargs
        )

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    _timings[(backend, cache)] = (
        benchmark.stats.stats.min,
        result["out"].fidelity,
    )


def test_statevector_cached(benchmark, show):
    _bench(benchmark, "statevector", True)


def test_statevector_uncached(benchmark, show):
    _bench(benchmark, "statevector", False)


def test_density_cached(benchmark, show):
    _bench(benchmark, "density", True)


def test_density_uncached(benchmark, show):
    _bench(benchmark, "density", False)


def test_cache_speedup_and_equivalence(show):
    """Acceptance: >=1.5x on the repeated-layer density walk, bit-identical."""
    _warmup()
    cached_s, cached_f = _timed("density", True)
    uncached_s, uncached_f = _timed("density", False)
    sv_cached_s, sv_cached_f = _timed("statevector", True)
    sv_uncached_s, sv_uncached_f = _timed("statevector", False)
    speedup = uncached_s / cached_s

    class _Report:
        def render(self):
            return (
                "== bench-executor: Ising-6 on grid 2x3 (repeated layers) ==\n"
                f"density   uncached {uncached_s:7.3f}s\n"
                f"density   cached   {cached_s:7.3f}s  ({speedup:.2f}x)\n"
                f"statevec  uncached {sv_uncached_s:7.3f}s\n"
                f"statevec  cached   {sv_cached_s:7.3f}s"
            )

    show(_Report())
    assert cached_f == uncached_f  # bit-identical, not approximate
    assert sv_cached_f == sv_uncached_f
    assert speedup >= 1.5
    # cache=True is a per-backend policy now: statevector opts out, so the
    # cached walk is the uncached code path and must not pay for the cache.
    # Generous margin — both sides are a single ~0.3s measurement.
    assert sv_cached_s <= sv_uncached_s * 1.25
