"""Layer-walk driver throughput: cached vs uncached, statevector vs density.

The workload is a 6-qubit, 6-Trotter-step Ising schedule on the 2x3 grid —
bond and transverse layers repeat every step, which is exactly the pattern
the layer-propagator cache amortizes.  Acceptance (from the PR issue): the cache must deliver a
>= 1.5x speedup on the repeated-layer *density* walk with bit-identical
fidelities, since the density path rebuilds the dominant ``4^n`` layer
unitary on every repetition when uncached.
"""

import time

from repro.circuits import compile_circuit
from repro.circuits.library.ising import ising
from repro.device import grid, make_device
from repro.pulses import build_library
from repro.runtime import execute
from repro.scheduling import zzx_schedule
from repro.sim.density import DecoherenceModel
from repro.units import US

_DECO = DecoherenceModel(t1_ns=200.0 * US, t2_ns=200.0 * US)


def _stack():
    device = make_device(grid(2, 3), seed=7)
    library = build_library("pert")
    compiled = compile_circuit(ising(6, steps=6), device.topology)
    schedule = zzx_schedule(compiled.circuit, device.topology)
    return device, library, schedule


#: (backend, cache) -> (wall seconds, fidelity); reused by the speedup
#: assertion so the grid is timed once, not per test.
_timings: dict[tuple[str, bool], tuple[float, float]] = {}


def _timed(backend: str, cache: bool) -> tuple[float, float]:
    key = (backend, cache)
    if key not in _timings:
        device, library, schedule = _stack()
        kwargs = {}
        if backend == "density":
            kwargs["decoherence"] = _DECO
        start = time.perf_counter()
        out = execute(schedule, device, library, backend, cache=cache, **kwargs)
        _timings[key] = (time.perf_counter() - start, out.fidelity)
    return _timings[key]


def test_statevector_cached(benchmark, show):
    benchmark.pedantic(lambda: _timed("statevector", True), rounds=1, iterations=1)


def test_statevector_uncached(benchmark, show):
    benchmark.pedantic(lambda: _timed("statevector", False), rounds=1, iterations=1)


def test_density_cached(benchmark, show):
    benchmark.pedantic(lambda: _timed("density", True), rounds=1, iterations=1)


def test_density_uncached(benchmark, show):
    benchmark.pedantic(lambda: _timed("density", False), rounds=1, iterations=1)


def test_cache_speedup_and_equivalence(show):
    """Acceptance: >=1.5x on the repeated-layer density walk, bit-identical."""
    cached_s, cached_f = _timed("density", True)
    uncached_s, uncached_f = _timed("density", False)
    sv_cached_s, _ = _timed("statevector", True)
    speedup = uncached_s / cached_s

    class _Report:
        def render(self):
            return (
                "== bench-executor: Ising-6 on grid 2x3 (repeated layers) ==\n"
                f"density   uncached {uncached_s:7.3f}s\n"
                f"density   cached   {cached_s:7.3f}s  ({speedup:.2f}x)\n"
                f"statevec  cached   {sv_cached_s:7.3f}s"
            )

    show(_Report())
    assert cached_f == uncached_f  # bit-identical, not approximate
    assert speedup >= 1.5
