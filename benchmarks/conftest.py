"""Benchmark harness configuration.

Each bench regenerates one paper table/figure and prints the same rows the
paper reports.  ``REPRO_FULL=1`` switches to the paper's complete 4-12 qubit
sweep (minutes to hours); the default runs reduced sizes suitable for CI.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def show():
    """Print experiment tables even under pytest output capture."""

    def _show(result):
        import sys

        text = result.render() if hasattr(result, "render") else str(result)
        sys.stderr.write("\n" + text + "\n")

    return _show
