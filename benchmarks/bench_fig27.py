"""Fig. 27 / Sec 7.4 — Ramsey effective-ZZ measurement.

Paper claim: effective ZZ drops from ~200 kHz to < 11 kHz.
"""

from repro.experiments import ramsey


def test_fig27_ramsey_effective_zz(benchmark, show):
    result = benchmark.pedantic(ramsey.run, rounds=1, iterations=1)
    show(result)
    bare = [r["effective_zz_khz"] for r in result.rows if r["circuit"] == "A"]
    compiled = [
        r["effective_zz_khz"] for r in result.rows if r["circuit"] in ("B", "C")
    ]
    assert min(bare) > 150.0  # ~200 kHz per active coupling
    assert max(compiled) < 11.0  # the paper's threshold
