"""Fig. 21 — co-optimization vs pulses-only and scheduling-only."""

from repro.experiments import fig21_coopt


def test_fig21_co_optimization_synergy(benchmark, show):
    result = benchmark.pedantic(fig21_coopt.run, rounds=1, iterations=1)
    show(result)
    # Synergy: the co-optimized config is never materially worse than
    # either part alone, and strictly better on average.
    import numpy as np

    full = np.array(result.column("pert+zzx"))
    pulses = np.array(result.column("pert+par"))
    sched = np.array(result.column("gau+zzx"))
    assert np.all(full >= pulses - 0.05)
    assert np.all(full >= sched - 0.05)
    assert full.mean() > pulses.mean()
    assert full.mean() > sched.mean()
