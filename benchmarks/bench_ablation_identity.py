"""Ablation — identity-supplement policy of Algorithm 2.

"not_pending" is the paper's literal line 10 (qubits of pending schedulable
gates receive no identity); "all_free" pulses every gate-free qubit of the
partition.  This bench quantifies the fidelity difference.
"""

from repro.circuits import compile_circuit
from repro.circuits.library import BENCHMARKS
from repro.experiments.common import library, paper_device
from repro.experiments.result import ExperimentResult
from repro.runtime import execute_statevector
from repro.scheduling import ZZXConfig, zzx_schedule


def run_ablation() -> ExperimentResult:
    result = ExperimentResult(
        "ablation-identity",
        "identity-supplement policy: paper-literal vs eager",
    )
    device = paper_device()
    lib = library("pert")
    for name, size in (("QAOA", 6), ("Ising", 6), ("GRC", 4)):
        compiled = compile_circuit(BENCHMARKS[name](size), device.topology)
        row = {"benchmark": f"{name}-{size}"}
        for policy in ("not_pending", "all_free"):
            schedule = zzx_schedule(
                compiled.circuit,
                device.topology,
                config=ZZXConfig(identity_policy=policy),
            )
            out = execute_statevector(schedule, device, lib)
            row[policy] = out.fidelity
        result.rows.append(row)
    return result


def test_identity_policy_ablation(benchmark, show):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        # Both policies deliver high fidelity; they differ only marginally.
        assert row["not_pending"] > 0.85
        assert row["all_free"] > 0.85
