"""Fig. 24 — relative execution time ZZXSched / ParSched (< 2x typical)."""

import numpy as np

from repro.experiments import fig24_exec_time


def test_fig24_execution_time(benchmark, show):
    result = benchmark.pedantic(fig24_exec_time.run, rounds=1, iterations=1)
    show(result)
    ratios = np.array(result.column("relative"))
    assert np.all(ratios >= 1.0)
    # "typically increases the execution time by < 2x"
    assert np.median(ratios) < 2.0
    assert np.all(ratios < 3.0)
