"""Fig. 28 — optimized pulse waveforms are AWG-reasonable."""

from repro.experiments import fig28_waveforms


def test_fig28_waveforms(benchmark, show):
    result = benchmark.pedantic(fig28_waveforms.run, rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        # Amplitudes within arbitrary-waveform-generator range (paper: tens
        # of MHz) and the documented durations.
        assert row["max_amp_x_mhz"] < 500.0
        if row["method"] == "dcg":
            assert row["duration_ns"] == 120.0
        else:
            assert row["duration_ns"] == 20.0
