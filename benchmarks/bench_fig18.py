"""Fig. 18 — suppression under ZZ crosstalk and leakage (DRAG)."""

from repro.experiments import fig18_leakage


def test_fig18_leakage(benchmark, show):
    result = benchmark.pedantic(
        fig18_leakage.run, kwargs={"num_points": 5}, rounds=1, iterations=1
    )
    show(result)
    rows = {
        (r["anharmonicity_mhz"], r["variant"], r["lambda_mhz"]): r["infidelity"]
        for r in result.rows
    }
    for alpha in (-200.0, -300.0, -400.0):
        # DRAG preserves ZZ suppression: pert+drag beats gaussian+drag.
        assert rows[(alpha, "pert+drag", 2.0)] < rows[(alpha, "gaussian+drag", 2.0)]
        # And fixes leakage: pert+drag beats bare pert at zero crosstalk.
        assert rows[(alpha, "pert+drag", 0.0)] < rows[(alpha, "pert", 0.0)]
