"""Fig. 19 — two-qubit (Rzx) suppression on the 4-qubit chain."""

from repro.experiments import fig19_two_qubit


def test_fig19_two_qubit_suppression(benchmark, show):
    result = benchmark.pedantic(
        fig19_two_qubit.run,
        kwargs={"num_points": 9, "grid_points": 4},
        rounds=1,
        iterations=1,
    )
    show(result)
    at_1mhz = {
        r["method"]: r["infidelity"]
        for r in result.rows
        if r["panel"] == "a:equal" and r["lambda12_mhz"] == 1.0
    }
    assert at_1mhz["pert"] < at_1mhz["gaussian"] / 100.0
    assert at_1mhz["optctrl"] < at_1mhz["gaussian"] / 10.0
    # Panel (b): suppression holds across asymmetric strength pairs.
    grid_rows = [r for r in result.rows if r["panel"] == "b:grid"]
    assert max(r["infidelity"] for r in grid_rows) < 1e-3
