"""Fig. 16 — single-qubit suppression curves (Rx(pi/2) and I)."""

from repro.experiments import fig16_single_qubit


def test_fig16_single_qubit_suppression(benchmark, show):
    result = benchmark.pedantic(
        fig16_single_qubit.run, kwargs={"num_points": 9}, rounds=1, iterations=1
    )
    show(result)
    summary = fig16_single_qubit.summarize(result)
    # Paper ordering: pert < {dcg, optctrl} < gaussian (log-mean infidelity).
    for gate in ("rx90", "id"):
        assert summary[(gate, "pert")] < summary[(gate, "gaussian")]
        assert summary[(gate, "dcg")] < summary[(gate, "gaussian")]
        assert summary[(gate, "optctrl")] < summary[(gate, "gaussian")]
