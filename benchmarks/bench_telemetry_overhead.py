"""Disabled-telemetry overhead guard.

Telemetry instrumentation lives *permanently* on hot paths — the executor
layer walk, the scheduler inner loops, every cache lookup — which is only
acceptable if the disabled path costs nothing measurable.  The disabled
path is a module-global bool check plus (for spans) a shared no-op
context manager, so the per-call cost should sit in the tens of
nanoseconds.

Acceptance (from the PR issue): disabled-telemetry hot paths must regress
by < 2%.  Comparing against a build with the instrumentation stripped
isn't possible in-tree, so the guard projects instead: it counts the
events a representative workload actually emits (by running it once with
collection on), measures the disabled per-call cost of a span and a
counter, and asserts events x per-call cost stays under 2% of the
workload's disabled wall time — with generous absolute per-call bounds
as a backstop.
"""

import time

from repro import telemetry
from repro.circuits import compile_circuit
from repro.circuits.library.ising import ising
from repro.device import grid, make_device
from repro.pulses import build_library
from repro.runtime import execute
from repro.scheduling import zzx_schedule

#: Calls per timing loop — enough to resolve sub-microsecond costs.
CALLS = 200_000


def _per_call_cost(fn) -> float:
    start = time.perf_counter()
    for _ in range(CALLS):
        fn()
    return (time.perf_counter() - start) / CALLS


def _disabled_span():
    with telemetry.span("bench.overhead"):
        pass


def _disabled_counter():
    telemetry.counter("bench.overhead")


def _workload():
    """The bench_executor workload: Ising-6, repeated layers, statevector."""
    device = make_device(grid(2, 3), seed=7)
    library = build_library("pert")
    compiled = compile_circuit(ising(6, steps=6), device.topology)
    schedule = zzx_schedule(compiled.circuit, device.topology)
    return execute(schedule, device, library, "statevector")


def test_disabled_span_cost(benchmark, show):
    assert not telemetry.enabled()
    benchmark.pedantic(
        lambda: [_disabled_span() for _ in range(1000)], rounds=3, iterations=1
    )


def test_disabled_counter_cost(benchmark, show):
    assert not telemetry.enabled()
    benchmark.pedantic(
        lambda: [_disabled_counter() for _ in range(1000)],
        rounds=3,
        iterations=1,
    )


def _emitted_events() -> tuple[int, int]:
    """(span closes, counter calls) the workload emits when collection is on."""
    telemetry.enable()
    try:
        telemetry.reset()
        _workload()
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()
        telemetry.reset()
    span_calls = sum(s["count"] for s in snap["spans"])
    counter_calls = 0
    for name, value in snap["counters"].items():
        if name == "exec.expm_matrices":
            # Batched: incremented once per expm call (with n = stack
            # size), from the same call site as exec.expm_calls — and
            # that site is additionally gated on enabled(), so disabled
            # mode pays one bool check for both.
            continue
        counter_calls += int(value)
    return span_calls, counter_calls


def test_disabled_overhead_under_2_percent(show):
    assert not telemetry.enabled()
    _workload()  # process warmup (BLAS spin-up, lazy imports)

    start = time.perf_counter()
    _workload()
    wall = time.perf_counter() - start

    span_cost = _per_call_cost(_disabled_span)
    counter_cost = _per_call_cost(_disabled_counter)
    span_calls, counter_calls = _emitted_events()
    projected = span_calls * span_cost + counter_calls * counter_cost
    share = projected / wall

    class _Report:
        def render(self):
            return (
                "== bench-telemetry-overhead (disabled mode) ==\n"
                f"workload wall      {wall:8.3f}s\n"
                f"span cost          {1e9 * span_cost:8.0f}ns/call "
                f"x {span_calls} calls\n"
                f"counter cost       {1e9 * counter_cost:8.0f}ns/call "
                f"x {counter_calls} calls\n"
                f"projected overhead {1e3 * projected:8.3f}ms "
                f"({100 * share:.3f}% of workload)"
            )

    show(_Report())
    # Backstop absolute bounds: the disabled path is a bool check (plus a
    # shared null context manager for spans) and must stay sub-microsecond.
    assert span_cost < 2e-6
    assert counter_cost < 2e-6
    # The acceptance bound: instrumentation events x disabled per-call
    # cost under 2% of the workload's wall time.
    assert share < 0.02
