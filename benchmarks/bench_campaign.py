"""Campaign runner throughput: serial vs process-pool dispatch.

The grid is a reduced Fig. 20 slice (5 benchmarks x 2 sizes x 2 configs =
20 statevector cells) with no result store, so every run evaluates every
cell.  On a >=4-core host the 4-worker pool must clear 2.5x the serial
throughput; single-core CI containers skip the speedup assertion (there is
no parallelism to measure) but still record both timings for the trend
file.
"""

import os
import time

import pytest

from repro.campaigns import SweepSpec, run_campaign

BENCH_SPEC = SweepSpec(
    name="bench-campaign",
    benchmarks=("HS", "QFT", "QAOA", "Ising", "GRC"),
    sizes=(4, 6),
    configs=("gau+par", "pert+zzx"),
)

PARALLEL_WORKERS = 4

#: worker count -> wall-clock seconds, so the speedup assertion reuses the
#: timings the two benchmark tests already measured instead of re-running
#: the whole grid.
_timings: dict[int, float] = {}


def _timed_run(workers: int) -> float:
    if workers not in _timings:
        start = time.perf_counter()
        campaign = run_campaign(BENCH_SPEC, workers=workers)
        _timings[workers] = time.perf_counter() - start
        assert campaign.computed == len(BENCH_SPEC.cells())
    return _timings[workers]


def test_campaign_serial(benchmark, show):
    benchmark.pedantic(lambda: _timed_run(1), rounds=1, iterations=1)


def test_campaign_parallel_4w(benchmark, show):
    benchmark.pedantic(
        lambda: _timed_run(PARALLEL_WORKERS), rounds=1, iterations=1
    )


def test_parallel_speedup(show):
    """Acceptance: >=2.5x throughput at 4 workers (needs >=4 cores)."""
    serial_s = _timed_run(1)
    parallel_s = _timed_run(PARALLEL_WORKERS)
    cells = len(BENCH_SPEC.cells())
    speedup = serial_s / parallel_s

    class _Report:
        def render(self):
            return (
                f"== bench-campaign: {cells} cells ==\n"
                f"serial    {serial_s:7.2f}s  {cells / serial_s:6.2f} cells/s\n"
                f"4 workers {parallel_s:7.2f}s  {cells / parallel_s:6.2f} cells/s\n"
                f"speedup   {speedup:7.2f}x  (cores: {os.cpu_count()})"
            )

    show(_Report())
    if (os.cpu_count() or 1) < PARALLEL_WORKERS:
        pytest.skip(
            f"{os.cpu_count()} core(s): cannot measure {PARALLEL_WORKERS}-way speedup"
        )
    assert speedup >= 2.5
