"""Campaign runner throughput: cost-model dispatch on uniform and skewed grids.

Two grids, each timed serially (forced) and under ``--workers 4`` auto
dispatch:

- **uniform**: the reduced Fig. 20 slice (5 benchmarks x 2 sizes x
  2 configs = 20 statevector cells).  BENCH_2 recorded the old
  unconditional pool *losing* here (22.78s vs 22.13s serial); the
  acceptance bar is now decision-aware — when the cost model fans out it
  must win, and when it picks serial that is the deliberate fast path
  and must cost no more than the forced-serial run.
- **skewed**: two ~9s pert+zzx 10-qubit cells plus twelve ~0.3s gau+par
  4-qubit cells.  This is the longest-job-first showcase: round-robin
  chunking would strand a heavy cell behind a stack of light ones, LJF
  submission starts both heavies immediately.

BENCH_1 taught us that the first timed variant absorbs one-time process
warmup, so every timing here follows bench_executor's pattern: one
untimed warmup campaign, then min-of-``ROUNDS`` measurements.  The
dispatch decision (mode, reason, cores) is recorded in each benchmark's
``extra_info`` so the BENCH snapshot shows *why* a timing looks the way
it does on that host.
"""

import os
import time

import pytest

from repro.campaigns import SweepSpec, run_campaign
from repro.campaigns.costmodel import available_cores
from repro.campaigns.spec import Cell

UNIFORM_SPEC = SweepSpec(
    name="bench-campaign",
    benchmarks=("HS", "QFT", "QAOA", "Ising", "GRC"),
    sizes=(4, 6),
    configs=("gau+par", "pert+zzx"),
)

#: Two dominant cells + a tail of cheap ones (about 6:1 per-cell skew).
SKEWED_CELLS = [
    Cell(benchmark="QFT", num_qubits=10, config="pert+zzx"),
    Cell(benchmark="QAOA", num_qubits=10, config="pert+zzx"),
] + [
    Cell(benchmark=b, num_qubits=4, config="gau+par", circuit_seed=seed)
    for seed in (0, 1)
    for b in ("HS", "QFT", "QAOA", "Ising", "GRC", "QPE")
]

GRIDS = {
    "uniform": list(UNIFORM_SPEC.cells()),
    "skewed": SKEWED_CELLS,
}

PARALLEL_WORKERS = 4

#: Per-variant measurement repeats; the minimum is kept (single-shot
#: campaign timings on a shared CI host jitter by ~10%).
ROUNDS = 3

#: (grid, mode) -> (best wall seconds, last CampaignResult).  Shared so
#: the acceptance tests reuse the timings the benchmark tests measured
#: instead of re-running whole grids.
_timings: dict[tuple[str, str], tuple[float, object]] = {}

_warmed = False


def _warmup() -> None:
    """One untimed campaign before any timing.

    Pays the one-time process costs (BLAS spin-up, lazy imports, pulse
    libraries, suppression plans for the skewed heavies) exactly once, so
    the first timed variant is not charged for them.
    """
    global _warmed
    if not _warmed:
        _warmed = True
        warm = [
            Cell(benchmark="QFT", num_qubits=4, config="gau+par"),
            Cell(benchmark="QFT", num_qubits=4, config="pert+zzx"),
        ]
        run_campaign(warm)


def _run(grid: str, mode: str):
    """Min-of-ROUNDS wall time for one (grid, dispatch-mode) variant.

    ``mode="serial"`` forces the legacy loop; ``mode="auto"`` requests
    ``PARALLEL_WORKERS`` and lets the cost model decide — which is the
    code path ``repro sweep --workers 4`` takes.  Every round uses a
    fresh in-memory store so every cell is evaluated every time.
    """
    key = (grid, mode)
    if key not in _timings:
        _warmup()
        cells = GRIDS[grid]
        workers = 1 if mode == "serial" else PARALLEL_WORKERS
        best, campaign = float("inf"), None
        for _ in range(ROUNDS):
            start = time.perf_counter()
            campaign = run_campaign(cells, workers=workers, dispatch=mode)
            best = min(best, time.perf_counter() - start)
            assert campaign.computed == len(cells)
        _timings[key] = (best, campaign)
    return _timings[key]


def _bench(benchmark, grid: str, mode: str) -> None:
    """Measure one variant under pytest-benchmark and share its min."""
    _warmup()
    cells = GRIDS[grid]
    workers = 1 if mode == "serial" else PARALLEL_WORKERS
    result = {}

    def run():
        result["campaign"] = run_campaign(cells, workers=workers, dispatch=mode)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    campaign = result["campaign"]
    assert campaign.computed == len(cells)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info.update(
            cells=len(cells),
            cores=available_cores(),
            dispatch=campaign.dispatch,
            dispatch_reason=campaign.dispatch_reason,
            workers=campaign.workers,
        )
        _timings[(grid, mode)] = (benchmark.stats.stats.min, campaign)


def test_campaign_uniform_serial(benchmark, show):
    _bench(benchmark, "uniform", "serial")


def test_campaign_uniform_auto_4w(benchmark, show):
    _bench(benchmark, "uniform", "auto")


def test_campaign_skewed_serial(benchmark, show):
    _bench(benchmark, "skewed", "serial")


def test_campaign_skewed_auto_4w(benchmark, show):
    _bench(benchmark, "skewed", "auto")


def _report(grid: str, serial_s: float, auto_s: float, campaign):
    cells = len(GRIDS[grid])
    speedup = serial_s / auto_s

    class _Report:
        def render(self):
            return (
                f"== bench-campaign[{grid}]: {cells} cells ==\n"
                f"serial       {serial_s:7.2f}s  {cells / serial_s:6.2f} cells/s\n"
                f"auto (4 req) {auto_s:7.2f}s  {cells / auto_s:6.2f} cells/s\n"
                f"speedup      {speedup:7.2f}x  "
                f"(cores: {available_cores()}, os: {os.cpu_count()})\n"
                f"decision     {campaign.dispatch} "
                f"x{campaign.workers}: {campaign.dispatch_reason}"
            )

    return _Report()


def _assert_dispatch_pays(grid: str, show, parallel_floor: float) -> None:
    """The decision-aware acceptance bar, shared by both grids.

    Whatever the host: auto dispatch must never lose to serial beyond
    measurement noise (the BENCH_2 regression is the bug this guards).
    When the model fans out on enough cores, it must actually win.
    """
    serial_s, _ = _run(grid, "serial")
    auto_s, campaign = _run(grid, "auto")
    show(_report(grid, serial_s, auto_s, campaign))

    if campaign.dispatch == "serial":
        # The deliberate serial fast path: a recorded reason, and no
        # pool was paid for — so no regression vs forced serial.  The
        # margin is generous because both sides are min-of-3 wall-clock
        # measurements on a possibly shared host; the decision itself
        # costs microseconds.
        assert campaign.downgraded and campaign.dispatch_reason
        assert auto_s <= serial_s * 1.25
        pytest.skip(
            f"cost model chose serial ({campaign.dispatch_reason}); "
            "no parallelism to measure"
        )
    speedup = serial_s / auto_s
    assert speedup >= 1.0  # fanning out and losing is never acceptable
    if campaign.workers >= PARALLEL_WORKERS:
        assert speedup >= parallel_floor
    else:  # 2-3 usable cores: a weaker but real win is required
        assert speedup >= 1.2


def test_uniform_dispatch_never_loses(show):
    """Uniform grid: parallel win or a deliberate serial decision."""
    _assert_dispatch_pays("uniform", show, parallel_floor=2.0)


def test_skewed_dispatch_exploits_ljf(show):
    """Skewed grid: LJF keeps the heavies off the critical-path tail."""
    _assert_dispatch_pays("skewed", show, parallel_floor=2.0)
