"""Fig. 17 — Pert pulse robustness to drive noise."""

from repro.experiments import fig17_drive_noise


def test_fig17_drive_noise(benchmark, show):
    result = benchmark.pedantic(
        fig17_drive_noise.run, kwargs={"num_points": 9}, rounds=1, iterations=1
    )
    show(result)
    # Typical noise (0.1 MHz detuning / 0.1% amplitude) keeps suppression
    # far below the Gaussian baseline (~1e-2 at 1 MHz).
    typical = [
        r["infidelity"]
        for r in result.rows
        if r["lambda_mhz"] == 1.0 and r["noise"] in ("0.1MHz", "0.10%")
    ]
    assert all(v < 1e-3 for v in typical)
