"""Fig. 25 — #couplings to turn off on tunable-coupler devices.

Paper claim: a 10-20x reduction over the baseline, slow growth with size.
"""

import numpy as np

from repro.experiments import fig25_tunable


def test_fig25_couplings_to_turn_off(benchmark, show):
    result = benchmark.pedantic(fig25_tunable.run, rounds=1, iterations=1)
    show(result)
    imps = np.array(result.column("improvement"))
    assert np.all(imps > 2.0)
    assert np.median(imps) > 4.0
    # Ours stays small in absolute terms.
    assert np.median(result.column("zzxsched")) < 4.0
