"""Ablation — sensitivity of Algorithm 1 to alpha and top-k.

The paper fixes alpha = 0.5 and k = 3 (Sec 7.3 Setup); this bench shows the
NQ/NC trade-off those values buy on a non-bipartite topology and that k > 1
is what enables the trade-off at all.
"""

import pytest

from repro.device import ring
from repro.experiments.result import ExperimentResult
from repro.graphs import alpha_optimal_suppression


def run_ablation() -> ExperimentResult:
    result = ExperimentResult(
        "ablation-alpha",
        "alpha / top-k sensitivity of alpha-optimal suppression (ring-7)",
    )
    topo = ring(7)  # odd ring: complete suppression impossible
    for alpha in (0.0, 0.5, 2.0, 10.0):
        for top_k in (1, 3, 5):
            plan = alpha_optimal_suppression(topo, alpha=alpha, top_k=top_k)
            result.rows.append(
                {
                    "alpha": alpha,
                    "top_k": top_k,
                    "nq": plan.nq,
                    "nc": plan.nc,
                    "objective": plan.objective(alpha),
                }
            )
    return result


def test_alpha_topk_ablation(benchmark, show):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    show(result)
    rows = {(r["alpha"], r["top_k"]): r for r in result.rows}
    # At any alpha, more paths never hurt the objective.
    for alpha in (0.0, 0.5, 2.0, 10.0):
        assert (
            rows[(alpha, 5)]["objective"] <= rows[(alpha, 1)]["objective"] + 1e-9
        )
    # Large alpha prefers smaller regions.
    assert rows[(10.0, 5)]["nq"] <= rows[(0.0, 5)]["nq"]
