"""Serving benchmarks: warm daemon round-trips vs cold per-request cost.

Boots one in-process ``repro serve`` daemon *per backend* (thread /
process) and times complete client round-trips (HTTP parse, queue,
batch, compile, response) with warm caches — the steady state the daemon
exists for — plus a concurrent burst, and the per-request cold-process
baseline each request would pay without the daemon (fresh interpreter,
imports, topology build, cold plan cache).  The warm-request/cold
ratio is the serving layer's contribution; the thread-vs-process A/B on
the burst is the multicore story (on a 1-core box the two tie — the
process pool pays IPC without gaining parallelism).  Through
``scripts/dump_bench.py`` these land in the ``BENCH_<n>.json`` trend
snapshots.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.serve import ReproServer, ServeClient, ServeConfig, ServeError
from repro.serve.loadtest import cold_baseline

FULL = os.environ.get("REPRO_FULL", "0") == "1"

POINTS = [
    ("eagle", "qaoa"),
    ("eagle", "qv"),
]
if FULL:
    POINTS.append(("osprey", "qaoa"))

BACKENDS = ("thread", "process")

BURST_CLIENTS = 4
BURST_PER_CLIENT = 4


@pytest.fixture(scope="module", params=BACKENDS)
def daemon(request):
    server = ReproServer(
        ServeConfig(port=0, workers=2, backend=request.param)
    )
    thread = server.start_background()
    client = ServeClient(port=server.port)
    client.wait_ready()
    # Warm every benchmarked workload: plan cache + topology structures.
    for name, kind in POINTS:
        client.compile(name, kind)
    yield client
    try:
        client.shutdown()
    except ServeError:
        server.request_stop()
    client.close()
    thread.join(timeout=15.0)


@pytest.mark.parametrize("name,kind", POINTS, ids=[f"{n}-{k}" for n, k in POINTS])
def test_serve_warm_request(benchmark, daemon, name, kind):
    """One warm client round-trip (the acceptance p50 is this number)."""
    response = benchmark(lambda: daemon.compile(name, kind))
    assert response["status"] == "ok"


def test_serve_concurrent_burst(benchmark, daemon):
    """A 4-client burst of 16 warm eagle requests, wall-clock.

    The thread-vs-process fixture split makes this the CPU-bound
    throughput A/B: with ≥2 usable cores the process backend's burst
    should be strictly faster.
    """

    def burst():
        errors = []

        def body():
            mine = ServeClient(port=daemon.port)
            try:
                for _ in range(BURST_PER_CLIENT):
                    mine.compile("eagle", "qaoa")
            except ServeError as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                mine.close()

        pool = [threading.Thread(target=body) for _ in range(BURST_CLIENTS)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert errors == []

    benchmark.pedantic(burst, rounds=3, iterations=1)


def test_cold_process_request(benchmark):
    """What one eagle/qaoa request costs as a fresh one-shot process."""
    result = benchmark.pedantic(
        lambda: cold_baseline("eagle", "qaoa", samples=1),
        rounds=2,
        iterations=1,
    )
    assert result["samples"] == 1
