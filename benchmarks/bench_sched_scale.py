"""Scheduler-scale benchmarks: ZZXSched compile time on real devices.

Times the compile path (schedule construction only) at Falcon (23q),
Eagle (127q) and — under ``REPRO_FULL=1`` — Osprey (433q) scale, each
with the plan cache cold, warm, and disabled.  The warm/uncached ratio is
the plan cache's contribution; the cold numbers track absolute compile
time (the paper's Fig. 24/27 metric).  Run through
``scripts/dump_bench.py`` these land in the ``BENCH_<n>.json`` trend
snapshots.
"""

from __future__ import annotations

import os

import pytest

from repro.scheduling.plan_cache import NullPlanCache, SuppressionPlanCache
from repro.scheduling.scalebench import bench_circuit, bench_device, run_point
from repro.scheduling.zzxsched import zzx_schedule

FULL = os.environ.get("REPRO_FULL", "0") == "1"

POINTS = [
    ("falcon", "qaoa"),
    ("eagle", "qaoa"),
    ("eagle", "qv"),
]
if FULL:
    POINTS.append(("osprey", "qaoa"))


def _compiled(name: str, kind: str):
    device = bench_device(name)
    circuit = bench_circuit(device.topology, kind)
    # One-time per-topology structures are not compile work.
    device.topology.distance_matrix
    device.topology.dual_simple
    return device.topology, circuit


@pytest.mark.parametrize("name,kind", POINTS, ids=[f"{n}-{k}" for n, k in POINTS])
def test_sched_cold(benchmark, name, kind):
    topology, circuit = _compiled(name, kind)
    schedule = benchmark.pedantic(
        lambda: zzx_schedule(circuit, topology, plan_cache=SuppressionPlanCache()),
        rounds=1,
        iterations=1,
    )
    assert schedule.num_layers > 0


@pytest.mark.parametrize("name,kind", POINTS, ids=[f"{n}-{k}" for n, k in POINTS])
def test_sched_warm(benchmark, name, kind):
    topology, circuit = _compiled(name, kind)
    cache = SuppressionPlanCache()
    zzx_schedule(circuit, topology, plan_cache=cache)  # warm-up
    schedule = benchmark.pedantic(
        lambda: zzx_schedule(circuit, topology, plan_cache=cache),
        rounds=3,
        iterations=1,
    )
    assert schedule.num_layers > 0
    assert cache.hits > 0


@pytest.mark.parametrize(
    "name,kind", POINTS[:3], ids=[f"{n}-{k}" for n, k in POINTS[:3]]
)
def test_sched_uncached(benchmark, name, kind):
    topology, circuit = _compiled(name, kind)
    schedule = benchmark.pedantic(
        lambda: zzx_schedule(circuit, topology, plan_cache=NullPlanCache()),
        rounds=1,
        iterations=1,
    )
    assert schedule.num_layers > 0


def test_speedup_and_budget(show):
    """The acceptance numbers: >=10x warm-vs-uncached at 127q, 433q < 60s.

    Asserted at half strength (>=5x) to absorb CI machine-load jitter; the
    measured ratios (~10-13x warm vs uncached on Eagle) are recorded in
    EXPERIMENTS.md and the BENCH_<n>.json snapshots.
    """
    point = run_point("eagle", "qaoa", compare_uncached=True)
    show_row = point.row()
    show(f"eagle/qaoa: {show_row}")
    assert point.uncached_s / point.warm_s >= 5.0, show_row
    if FULL:
        osprey = run_point("osprey", "qaoa", compare_uncached=False)
        show(f"osprey/qaoa: {osprey.row()}")
        assert osprey.cold_s < 60.0, osprey.row()
