"""Fig. 23 — 6-qubit benchmarks under ZZ crosstalk + decoherence.

Paper claim: improvements are stable across T1 = T2 in {100..1000} us.
"""

import os

import numpy as np

from repro.experiments import fig23_decoherence


def _benchmarks():
    if os.environ.get("REPRO_FULL", "0") == "1":
        return fig23_decoherence.DEFAULT_BENCHMARKS
    return ("HS", "QAOA", "Ising")


def test_fig23_decoherence(benchmark, show):
    result = benchmark.pedantic(
        fig23_decoherence.run,
        kwargs={"benchmarks": _benchmarks()},
        rounds=1,
        iterations=1,
    )
    show(result)
    # Improvement stays stable (within a factor ~3) across the T1/T2 sweep.
    for name in _benchmarks():
        rows = result.filtered(benchmark=f"{name}-6")
        imps = np.array([r["improvement"] for r in rows])
        assert np.all(imps > 0.9)
        assert imps.max() / imps.min() < 4.0
    # Co-optimization still wins under decoherence.
    assert np.mean(
        [r["pert+zzx"] - r["gau+par"] for r in result.rows]
    ) > 0.0
