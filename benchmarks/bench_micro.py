"""Microbenchmarks of the performance-critical substrate pieces."""

import numpy as np

from repro.circuits import compile_circuit
from repro.circuits.library import qaoa
from repro.device import grid, make_device
from repro.graphs import alpha_optimal_suppression
from repro.pulses import build_library
from repro.qmath.states import zero_state
from repro.runtime import execute_statevector
from repro.scheduling import zzx_schedule
from repro.sim.trotter import LayerDrive, TrotterEngine


def test_trotter_layer_12q(benchmark):
    """One 20 ns layer on the full 3x4 grid (the executor's hot path)."""
    device = make_device(grid(3, 4), seed=7)
    lib = build_library("pert")
    engine = TrotterEngine(12, device.couplings(), dt=0.25)
    ops = lib["rx90"].step_unitaries()
    drives = [LayerDrive((q,), ops) for q in (0, 2, 5, 7, 8, 10)]
    psi = zero_state(12)

    benchmark(lambda: engine.evolve_layer(psi.copy(), 20.0, drives))


def test_alpha_optimal_suppression_grid34(benchmark):
    """Algorithm 1 on the paper's device with a gate constraint."""
    topo = grid(3, 4)
    benchmark(lambda: alpha_optimal_suppression(topo, gate_qubits=(5, 6)))


def test_zzx_scheduling_qaoa6(benchmark):
    """Algorithm 2 end to end on QAOA-6 (compile excluded)."""
    topo = grid(3, 4)
    circuit = compile_circuit(qaoa(6, seed=1), topo).circuit
    benchmark(lambda: zzx_schedule(circuit, topo))


def test_full_simulation_ising4(benchmark):
    """Complete execute_statevector run of a small benchmark."""
    device = make_device(grid(2, 3), seed=7)
    lib = build_library("pert")
    circuit = compile_circuit(qaoa(4, seed=1), device.topology).circuit
    schedule = zzx_schedule(circuit, device.topology)

    result = benchmark(lambda: execute_statevector(schedule, device, lib))
    assert result.fidelity > 0.9
