"""Microbenchmarks of the performance-critical substrate pieces."""

import numpy as np

from repro.circuits import compile_circuit
from repro.circuits.library import qaoa
from repro.device import grid, make_device
from repro.graphs import alpha_optimal_suppression
from repro.pulses import build_library
from repro.pulses.optimizers.engine import (
    FidelityScenario,
    fidelity_sum_loss_and_grad,
    pert_loss_and_grad,
)
from repro.qmath.paulis import ID2, SX, SY, SZ
from repro.qmath.states import zero_state
from repro.qmath.tensor import kron_all
from repro.qmath.unitaries import rzx
from repro.runtime import execute_statevector
from repro.scheduling import zzx_schedule
from repro.sim.propagate import propagate_piecewise
from repro.sim.trotter import LayerDrive, TrotterEngine

_GENS_2Q = (
    np.kron(SX, ID2),
    np.kron(SY, ID2),
    np.kron(ID2, SX),
    np.kron(ID2, SY),
    np.kron(SZ, SX),
)
_XTALK_2Q = (np.kron(SZ, ID2), np.kron(ID2, SZ))


def test_pert_loss_grad_2q(benchmark):
    """One Pert objective+gradient evaluation on the 2-qubit 80-step grid.

    This is the optimizer's innermost call; the vectorized engine must be
    >= 3x the per-step loop implementation here (measured ~15x).
    """
    rng = np.random.default_rng(3)
    amps = 0.1 * rng.standard_normal((5, 80))
    target = rzx(np.pi / 2)

    benchmark(
        lambda: pert_loss_and_grad(amps, _GENS_2Q, _XTALK_2Q, target, 3.0, 0.25)
    )


def test_optctrl_scenario_loss_16dim(benchmark):
    """The OptCtrl 2q joint loss: three 16-dim training scenarios + gate term."""
    rng = np.random.default_rng(5)
    gen_joint = (
        kron_all([ID2, SX, ID2, ID2]),
        kron_all([ID2, SY, ID2, ID2]),
        kron_all([ID2, ID2, SX, ID2]),
        kron_all([ID2, ID2, SY, ID2]),
        kron_all([ID2, SZ, SX, ID2]),
    )
    xtalk_static = kron_all([SZ, SZ, ID2, ID2]) + kron_all([ID2, ID2, SZ, SZ])
    eye2 = np.eye(2, dtype=complex)
    target = rzx(np.pi / 2)
    joint_target = kron_all([eye2, target, eye2])
    scenarios = [
        FidelityScenario(gen_joint, lam * xtalk_static, joint_target, 1.0 / 3.0)
        for lam in (0.0016, 0.0047, 0.0094)
    ]
    scenarios.append(
        FidelityScenario(_GENS_2Q, np.zeros((4, 4), dtype=complex), target, 2.0)
    )
    amps = 0.1 * rng.standard_normal((5, 80))

    benchmark(lambda: fidelity_sum_loss_and_grad(scenarios, amps, 0.25))


def test_propagate_piecewise_16dim(benchmark):
    """Stacked-eigh propagation of 80 16-dim segments with intermediates."""
    rng = np.random.default_rng(7)
    hams = rng.normal(size=(80, 16, 16)) + 1j * rng.normal(size=(80, 16, 16))
    hams = hams + np.conj(np.transpose(hams, (0, 2, 1)))

    benchmark(
        lambda: propagate_piecewise(hams, 0.25, return_intermediates=True)
    )


def test_trotter_layer_12q(benchmark):
    """One 20 ns layer on the full 3x4 grid (the executor's hot path)."""
    device = make_device(grid(3, 4), seed=7)
    lib = build_library("pert")
    engine = TrotterEngine(12, device.couplings(), dt=0.25)
    ops = lib["rx90"].step_unitaries()
    drives = [LayerDrive((q,), ops) for q in (0, 2, 5, 7, 8, 10)]
    psi = zero_state(12)

    benchmark(lambda: engine.evolve_layer(psi.copy(), 20.0, drives))


def test_alpha_optimal_suppression_grid34(benchmark):
    """Algorithm 1 on the paper's device with a gate constraint."""
    topo = grid(3, 4)
    benchmark(lambda: alpha_optimal_suppression(topo, gate_qubits=(5, 6)))


def test_zzx_scheduling_qaoa6(benchmark):
    """Algorithm 2 end to end on QAOA-6 (compile excluded)."""
    topo = grid(3, 4)
    circuit = compile_circuit(qaoa(6, seed=1), topo).circuit
    benchmark(lambda: zzx_schedule(circuit, topo))


def test_full_simulation_ising4(benchmark):
    """Complete execute_statevector run of a small benchmark."""
    device = make_device(grid(2, 3), seed=7)
    lib = build_library("pert")
    circuit = compile_circuit(qaoa(4, seed=1), device.topology).circuit
    schedule = zzx_schedule(circuit, device.topology)

    result = benchmark(lambda: execute_statevector(schedule, device, lib))
    assert result.fidelity > 0.9
