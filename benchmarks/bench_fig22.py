"""Fig. 22 — contribution split between pulse optimization and scheduling.

Paper averages: pulses 43.7%, scheduling 56.3%.
"""

import numpy as np

from repro.experiments import fig22_breakdown


def test_fig22_contribution_breakdown(benchmark, show):
    result = benchmark.pedantic(fig22_breakdown.run, rounds=1, iterations=1)
    show(result)
    pulse_pct, sched_pct = fig22_breakdown.mean_contributions(result)
    show(
        type(result)(
            "fig22-mean",
            "mean contributions",
            rows=[{"pulse_pct": pulse_pct, "scheduling_pct": sched_pct}],
        )
    )
    # Both components contribute meaningfully (paper: roughly 44/56).
    assert 10.0 < pulse_pct < 90.0
    assert np.isclose(pulse_pct + sched_pct, 100.0)
