"""Sec 7.3 — compilation takes < 0.25 s per benchmark."""

from repro.experiments import compile_time


def test_compile_time(benchmark, show):
    result = benchmark.pedantic(compile_time.run, rounds=1, iterations=1)
    show(result)
    # Warm-cache compiles measure < 0.21 s each (see EXPERIMENTS.md); the
    # assertion allows 2x slack for machine-load jitter in CI.
    for row in result.rows:
        assert row["compile_seconds"] < 0.5, row
